"""δ⁻-based activation-pattern monitor.

Implements the runtime monitoring mechanism the paper adopts from
Neukirchner et al., "Monitoring arbitrary activation patterns in
real-time systems" (RTSS 2012): a table of minimum-distance values
``delta[0..l-1]`` where ``delta[k]`` is the minimum permitted temporal
distance between a new event and its ``(k+1)``-th most recent
*accepted* predecessor.

The paper's basic setup (Section 5) uses ``l = 1``: interposed bottom
handler execution is permitted only with a minimum distance ``d_min``
between any two consecutive accepted activations.  Appendix A uses a
general ``l = 5`` table learned online (see :mod:`repro.core.learning`).

The monitor tracks the *accepted* event stream, not the raw arrival
stream.  This is the accounting under which the interference bound of
Eq. (14) holds: any two accepted activations ``q`` apart are at least
``delta[q-1]`` cycles apart, so at most ``eta_plus(dt)`` interposed
bottom handlers can execute in any window ``dt``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence


def normalize_delta_table(table: Sequence[int]) -> list[int]:
    """Return a monotonically non-decreasing copy of a δ⁻ table.

    A valid minimum-distance function is non-decreasing in the event
    count; tables measured from real traces always are, but
    user-supplied bounds may not be.  Normalizing with a running
    maximum yields the tightest non-decreasing table that dominates
    the input, preserving soundness of the monitoring condition.
    """
    normalized: list[int] = []
    running = 0
    for value in table:
        if value < 0:
            raise ValueError(f"δ⁻ distances must be >= 0, got {value}")
        running = max(running, int(value))
        normalized.append(running)
    return normalized


class DeltaMinusMonitor:
    """Runtime monitor enforcing a δ⁻ minimum-distance condition.

    Parameters
    ----------
    table:
        ``table[k]`` is the minimum distance (cycles) required between
        a new event and the ``(k+1)``-th most recent accepted event.
        Length ``l`` of the table bounds how much history is kept.

    Usage
    -----
    >>> monitor = DeltaMinusMonitor([1000])     # d_min = 1000 cycles
    >>> monitor.check_and_accept(0)
    True
    >>> monitor.check_and_accept(500)           # violates d_min
    False
    >>> monitor.check_and_accept(1000)          # 1000 after last *accepted*
    True
    """

    def __init__(self, table: Sequence[int]):
        if len(table) == 0:
            raise ValueError("δ⁻ table must have at least one entry")
        self._table = normalize_delta_table(table)
        self._history: deque[int] = deque(maxlen=len(self._table))
        self._accepted = 0
        self._denied = 0
        self._last_time: Optional[int] = None

    @classmethod
    def from_dmin(cls, dmin: int) -> "DeltaMinusMonitor":
        """Construct the paper's basic ``l = 1`` monitor for ``d_min``."""
        return cls([dmin])

    @property
    def table(self) -> list[int]:
        """The (normalized) δ⁻ table in cycles."""
        return list(self._table)

    @property
    def depth(self) -> int:
        """Table length ``l`` (amount of history considered)."""
        return len(self._table)

    @property
    def dmin(self) -> int:
        """Minimum distance between consecutive accepted events."""
        return self._table[0]

    @property
    def accepted_count(self) -> int:
        return self._accepted

    @property
    def denied_count(self) -> int:
        return self._denied

    @property
    def checked_count(self) -> int:
        """Total ``check_and_accept`` decisions (accepted + denied)."""
        return self._accepted + self._denied

    def stats(self) -> "dict[str, int]":
        """Decision counters as plain data (for telemetry collection)."""
        return {
            "accepted": self._accepted,
            "denied": self._denied,
            "checked": self._accepted + self._denied,
            "depth": len(self._table),
            "dmin": self._table[0],
        }

    @property
    def history(self) -> list[int]:
        """Timestamps of the most recent accepted events, newest first."""
        return list(self._history)

    def permits(self, time: int) -> bool:
        """Would an event at ``time`` satisfy the monitoring condition?

        Does not modify monitor state.  The check costs ``C_Mon`` on
        the modelled hardware (cf. Eq. 15); that cost is charged by the
        hypervisor, not here.
        """
        self._check_order(time)
        for k, previous in enumerate(self._history):
            if time - previous < self._table[k]:
                return False
        return True

    def accept(self, time: int) -> None:
        """Record an accepted event at ``time``.

        Callers normally use :meth:`check_and_accept`; calling
        ``accept`` for a non-conformant time raises, since that would
        silently void the interference bound.
        """
        if not self.permits(time):
            raise ValueError(
                f"event at t={time} violates the δ⁻ condition; refusing to "
                "record it as accepted"
            )
        self._record(time)

    def check_and_accept(self, time: int) -> bool:
        """Check conformance and record the event if it passes.

        Returns True (event accepted) or False (event denied).  This is
        the single call the modified top handler makes per foreign-slot
        IRQ ("Interposing IRQ denied?" in Fig. 4b).
        """
        if self.permits(time):
            self._record(time)
            return True
        self._denied += 1
        self._last_time = time
        return False

    def deny_count_reset(self) -> None:
        """Reset acceptance statistics (not the history)."""
        self._accepted = 0
        self._denied = 0

    def reset(self) -> None:
        """Clear history and statistics."""
        self._history.clear()
        self._accepted = 0
        self._denied = 0
        self._last_time = None

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "table": list(self._table),
            "history": list(self._history),
            "accepted": self._accepted,
            "denied": self._denied,
            "last_time": self._last_time,
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "DeltaMinusMonitor":
        # The stored table is already normalized and normalization is
        # idempotent (a running maximum), so the ctor reproduces it.
        monitor = cls(state["table"])
        monitor._history = deque(state["history"], maxlen=len(monitor._table))
        monitor._accepted = state["accepted"]
        monitor._denied = state["denied"]
        monitor._last_time = state["last_time"]
        return monitor

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record(self, time: int) -> None:
        self._history.appendleft(time)
        self._accepted += 1
        self._last_time = time

    def _check_order(self, time: int) -> None:
        if self._history and time < self._history[0]:
            raise ValueError(
                f"monitor observed time {time} before last accepted event "
                f"{self._history[0]}; events must be monotone"
            )

    def __repr__(self) -> str:
        return (
            f"DeltaMinusMonitor(l={self.depth}, dmin={self.dmin}, "
            f"accepted={self._accepted}, denied={self._denied})"
        )


def verify_accepted_stream(times: Iterable[int], table: Sequence[int]) -> bool:
    """Check offline that an accepted-event stream satisfies a δ⁻ table.

    Used by tests and by :mod:`repro.core.independence` to validate
    that the monitor's output conforms to its own condition: for every
    pair of events ``q`` apart (``q <= l``), their distance is at least
    ``table[q-1]``.
    """
    normalized = normalize_delta_table(table)
    stream = list(times)
    for i in range(len(stream)):
        for k in range(len(normalized)):
            j = i - (k + 1)
            if j < 0:
                break
            if stream[i] - stream[j] < normalized[k]:
                return False
    return True
