"""Interference accounting and sufficient temporal independence.

Section 4 of the paper distinguishes *temporal isolation* (Eq. 1: the
interference set is empty, interference is zero) from *sufficient
temporal independence* (Eq. 2: interference is permitted but bounded
by a budget).  This module provides:

* :class:`InterferenceLedger` — records every interval in which one
  partition's time was consumed on behalf of another (interposed
  bottom handlers including their scheduler/context-switch overhead,
  and foreign top handlers), as measured in simulation;
* :class:`DminInterferenceBound` — the analytical bound of Eq. (14),
  ``I(dt) = ceil(dt / d_min) * C'_BH``;
* :func:`classify_independence` — Eq. (1)/(2) classification of a
  measured system against a budget.

The headline correctness property of the paper — enforced interposing
keeps every partition sufficiently temporally independent — is checked
by comparing ledger contents against the bound over arbitrary windows.
"""

from __future__ import annotations

import bisect
import enum
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence


class InterferenceKind(enum.Enum):
    """What kind of foreign activity consumed a partition's time."""

    INTERPOSED_BH = "interposed_bh"   # foreign bottom handler + overheads (Eq. 13)
    TOP_HANDLER = "top_handler"       # foreign top handler (tolerated, Section 4)
    MONITOR = "monitor"               # monitoring overhead C_Mon (Eq. 15)
    OTHER = "other"


@dataclass(frozen=True)
class InterferenceInterval:
    """A half-open interval ``[start, end)`` of foreign execution."""

    start: int
    end: int
    victim: str          # partition whose slot time was consumed
    source: str          # IRQ source / partition that caused it
    kind: InterferenceKind

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlap(self, window_start: int, window_end: int) -> int:
        """Cycles of this interval inside ``[window_start, window_end)``."""
        return max(0, min(self.end, window_end) - max(self.start, window_start))


class InterferenceLedger:
    """Append-only record of interference intervals, queryable per victim."""

    def __init__(self):
        self._intervals: list[InterferenceInterval] = []
        self._epoch = 0

    @property
    def snapshot_epoch(self) -> int:
        """Change counter bumped by every mutation of the ledger.

        Lets the layered world store (:mod:`repro.sim.worldstore`) skip
        re-serializing the interval list when nothing was recorded
        since the previous capture.
        """
        return self._epoch

    def record(self, start: int, end: int, victim: str, source: str,
               kind: InterferenceKind) -> None:
        """Record one interval of foreign execution inside a victim's slot."""
        self._intervals.append(
            InterferenceInterval(start, end, victim, source, kind)
        )
        self._epoch += 1

    @property
    def intervals(self) -> list[InterferenceInterval]:
        return list(self._intervals)

    def snapshot_state(self) -> list:
        """Plain-data interval list (see :mod:`repro.sim.snapshot`)."""
        return [
            (iv.start, iv.end, iv.victim, iv.source, iv.kind.value)
            for iv in self._intervals
        ]

    def restore_state(self, state: list) -> None:
        self._intervals = [
            InterferenceInterval(start, end, victim, source,
                                 InterferenceKind(kind))
            for start, end, victim, source, kind in state
        ]
        self._epoch += 1

    def for_victim(self, victim: str,
                   kinds: Optional[Iterable[InterferenceKind]] = None
                   ) -> list[InterferenceInterval]:
        """All intervals charged to ``victim`` (optionally filtered by kind)."""
        wanted = set(kinds) if kinds is not None else None
        return [
            iv for iv in self._intervals
            if iv.victim == victim and (wanted is None or iv.kind in wanted)
        ]

    def total(self, victim: str, window_start: int = 0,
              window_end: Optional[int] = None,
              kinds: Optional[Iterable[InterferenceKind]] = None) -> int:
        """Total interference cycles for ``victim`` within a window."""
        if window_end is None:
            window_end = max((iv.end for iv in self._intervals), default=0)
        return sum(
            iv.overlap(window_start, window_end)
            for iv in self.for_victim(victim, kinds)
        )

    def max_window_interference(self, victim: str, width: int,
                                kinds: Optional[Iterable[InterferenceKind]] = None
                                ) -> int:
        """Worst interference for ``victim`` over any window of ``width``.

        The maximum of a sliding-window sum over interval overlaps is
        attained when the window's start coincides with an interval
        start, or its end with an interval end; only those candidate
        positions are evaluated.  Overlap sums are computed from
        prefix sums in O(log n) each, so the whole query is
        O(n log n).
        """
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        intervals = self.for_victim(victim, kinds)
        if not intervals:
            return 0
        starts = sorted(iv.start for iv in intervals)
        ends = sorted(iv.end for iv in intervals)
        prefix_starts = [0]
        for value in starts:
            prefix_starts.append(prefix_starts[-1] + value)
        prefix_ends = [0]
        for value in ends:
            prefix_ends.append(prefix_ends[-1] + value)

        def coverage_before(t: int) -> int:
            # g(t) = sum_i |[start_i, end_i) ∩ (-inf, t)|
            #      = t*(a - k) - PS[a] + PE[k]
            # with a = #starts < t, k = #ends <= t.
            a = bisect.bisect_left(starts, t)
            k = bisect.bisect_right(ends, t)
            return t * (a - k) - prefix_starts[a] + prefix_ends[k]

        candidates = set(starts)
        candidates.update(max(0, end - width) for end in ends)
        worst = 0
        for start in candidates:
            worst = max(
                worst, coverage_before(start + width) - coverage_before(start)
            )
        return worst


class DminInterferenceBound:
    """Analytical interference bound for monitored interposing (Eq. 14).

    With a monitoring condition admitting interposed activations at
    most every ``d_min`` cycles, and each interposed activation costing
    ``C'_BH = C_BH + C_sched + 2 * C_ctx`` (Eq. 13), the interference a
    partition can suffer in any window ``dt`` is bounded by
    ``ceil(dt / d_min) * C'_BH``.
    """

    def __init__(self, dmin: int, c_bh_effective: int):
        if dmin <= 0:
            raise ValueError(f"d_min must be positive, got {dmin}")
        if c_bh_effective < 0:
            raise ValueError(f"C'_BH must be >= 0, got {c_bh_effective}")
        self.dmin = dmin
        self.c_bh_effective = c_bh_effective

    def max_interference(self, dt: int) -> int:
        """Upper bound on interposing interference in a window of ``dt``."""
        if dt < 0:
            raise ValueError(f"window must be >= 0, got {dt}")
        if dt == 0:
            return 0
        return math.ceil(dt / self.dmin) * self.c_bh_effective

    def __repr__(self) -> str:
        return f"DminInterferenceBound(dmin={self.dmin}, c_bh'={self.c_bh_effective})"


class IndependenceClass(enum.Enum):
    """Eq. (1)/(2) classification of a partition's temporal behaviour."""

    ISOLATED = "isolated"                      # Eq. 1: zero interference
    SUFFICIENTLY_INDEPENDENT = "sufficient"    # Eq. 2: interference <= budget
    VIOLATED = "violated"                      # interference exceeds budget


def classify_independence(interference: int, budget: int) -> IndependenceClass:
    """Classify measured interference against an allowed budget (Eq. 1/2)."""
    if interference < 0:
        raise ValueError(f"interference must be >= 0, got {interference}")
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if interference == 0:
        return IndependenceClass.ISOLATED
    if interference <= budget:
        return IndependenceClass.SUFFICIENTLY_INDEPENDENT
    return IndependenceClass.VIOLATED


@dataclass(frozen=True)
class IndependenceReport:
    """Result of verifying a victim partition against a bound."""

    victim: str
    window_widths: tuple[int, ...]
    measured: tuple[int, ...]
    bounds: tuple[int, ...]
    holds: bool

    def worst_ratio(self) -> float:
        """Largest measured/bound ratio (1.0 means the bound is tight)."""
        ratios = [
            m / b for m, b in zip(self.measured, self.bounds) if b > 0
        ]
        return max(ratios, default=0.0)


def verify_sufficient_independence(
    ledger: InterferenceLedger,
    victim: str,
    bound: Callable[[int], int],
    window_widths: Sequence[int],
    kinds: Optional[Iterable[InterferenceKind]] = (InterferenceKind.INTERPOSED_BH,),
) -> IndependenceReport:
    """Check measured interference against an analytical bound.

    For each window width, the worst measured interference over any
    placement of the window is compared against ``bound(width)``.
    Returns a report; ``report.holds`` is the paper's sufficient
    temporal independence property.
    """
    kinds_tuple = tuple(kinds) if kinds is not None else None
    measured = []
    bounds = []
    for width in window_widths:
        measured.append(ledger.max_window_interference(victim, width, kinds_tuple))
        bounds.append(bound(width))
    holds = all(m <= b for m, b in zip(measured, bounds))
    return IndependenceReport(
        victim=victim,
        window_widths=tuple(window_widths),
        measured=tuple(measured),
        bounds=tuple(bounds),
        holds=holds,
    )
