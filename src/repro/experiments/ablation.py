"""Experiments abl-boost / abl-throttle — baseline ablations (Section 2).

Two ablations justify the paper's design against the related work:

* **abl-boost** — a Xen-style boost scheduler (Ongaro et al.)
  interposes every IRQ without shaping.  Under a bursty arrival
  pattern its latency is as good as the monitored mechanism's, but the
  interference injected into other partitions' slots exceeds any
  d_min-style budget — temporal independence is lost, which is exactly
  why the paper adds the monitor.
* **abl-throttle** — source-level throttling (Regehr & Duongsaa)
  bounds the admitted arrival rate, so the *interference* of top
  handlers is controlled and overload is prevented, but admitted IRQs
  still take the delayed TDMA path: average latency stays at the
  unmonitored level, and suppressed IRQs are lost entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.boost import BoostPolicy
from repro.baselines.throttling import MinDistanceThrottle
from repro.core.independence import DminInterferenceBound
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import (
    IRQ_TIMER_DEVICE,
    PaperSystemConfig,
    ScenarioResult,
    ScenarioSummary,
    build_warm_world,
    run_irq_scenario,
    run_irq_scenario_from,
)
from repro.sim.snapshot import restore_world
from repro.metrics.report import render_table
from repro.workloads.synthetic import bursty_interarrivals


@dataclass
class BoostAblationResult:
    """Monitored interposing vs unshaped boost under bursts."""

    dmin_us: float
    window_us: float
    bound_us: float                  # Eq. 14 budget over the window
    monitored: ScenarioSummary
    boosted: ScenarioSummary
    monitored_worst_interference_us: float
    boosted_worst_interference_us: float

    @property
    def monitored_within_budget(self) -> bool:
        return self.monitored_worst_interference_us <= self.bound_us

    @property
    def boost_breaks_budget(self) -> bool:
        return self.boosted_worst_interference_us > self.bound_us


def run_boost_ablation(system: "PaperSystemConfig | None" = None,
                       irq_count: int = 1_500,
                       dmin_us: float = 1_444.0,
                       burst_length: int = 10,
                       intra_burst_us: float = 150.0,
                       inter_burst_us: float = 20_000.0,
                       window_us: float = 2_000.0,
                       seed: int = 11,
                       shared_warmup: bool = True) -> BoostAblationResult:
    """Burst workload through the monitor and through Xen-style boost.

    Both legs run the identical system over the identical bursts; with
    ``shared_warmup`` they fork one warm world captured at t=0 and only
    differ in the policy installed on the fork (byte-identical to two
    straight-line runs, pinned by the determinism tests).
    """
    system = system or PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(dmin_us)
    intervals = bursty_interarrivals(
        irq_count, burst_length,
        clock.us_to_cycles(intra_burst_us),
        clock.us_to_cycles(inter_burst_us),
        seed=seed,
    )
    if shared_warmup:
        warm = build_warm_world(system, NeverInterpose(), intervals)

        def install(policy_factory):
            def configure(hv, timer, source) -> None:
                source.policy = policy_factory()
            return configure

        monitored = run_irq_scenario_from(
            warm, system,
            configure=install(lambda: MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(dmin))),
        )
        boosted = run_irq_scenario_from(warm, system,
                                        configure=install(BoostPolicy))
    else:
        monitored = run_irq_scenario(
            system, MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
            intervals,
        )
        boosted = run_irq_scenario(system, BoostPolicy(), intervals)

    c_bh_eff = system.effective_bottom_cycles(clock)
    bound = DminInterferenceBound(dmin, c_bh_eff)
    width = clock.us_to_cycles(window_us)

    def worst(result: ScenarioResult) -> float:
        ledger = result.hypervisor.ledger
        from repro.core.independence import InterferenceKind
        return clock.cycles_to_us(max(
            ledger.max_window_interference(
                victim, width, (InterferenceKind.INTERPOSED_BH,)
            )
            for victim in (system.other_partition, system.housekeeping)
        ))

    # The interference ledger audit needs the live hypervisors, so it
    # happens here; the returned result is fully picklable (campaign
    # task).
    return BoostAblationResult(
        dmin_us=dmin_us,
        window_us=window_us,
        bound_us=clock.cycles_to_us(bound.max_interference(width)),
        monitored=monitored.lightweight(),
        boosted=boosted.lightweight(),
        monitored_worst_interference_us=worst(monitored),
        boosted_worst_interference_us=worst(boosted),
    )


@dataclass
class ThrottleAblationResult:
    """Source throttling vs monitored interposing on the same bursts."""

    throttled: ScenarioSummary
    monitored: ScenarioSummary
    suppressed_irqs: int

    @property
    def throttling_keeps_tdma_latency(self) -> bool:
        """Throttling does not help latency: its average stays at the
        TDMA-bound level, well above the monitored mechanism's."""
        return self.throttled.avg_latency_us > 2 * self.monitored.avg_latency_us


def run_throttle_ablation(system: "PaperSystemConfig | None" = None,
                          irq_count: int = 1_500,
                          dmin_us: float = 1_444.0,
                          seed: int = 13,
                          shared_warmup: bool = True) -> ThrottleAblationResult:
    """Same admitted rate, opposite effects: loss vs latency.

    The workload is a normal d_min-adherent phase (two thirds of the
    IRQs) followed by an overload burst (the remaining third).  The
    throttle neither helps the normal phase (delayed handling keeps
    the TDMA-scale latency) nor preserves the burst (suppressed IRQs
    are lost); the monitor gives the normal phase short interposed
    latencies and merely *delays* the burst.
    """
    system = system or PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(dmin_us)
    from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals
    normal_count = 2 * irq_count // 3
    intervals = clip_to_dmin(
        exponential_interarrivals(normal_count, dmin, seed=seed), dmin
    ) + bursty_interarrivals(
        irq_count - normal_count, burst_length=8,
        intra_burst=clock.us_to_cycles(200.0),
        inter_burst=clock.us_to_cycles(15_000.0),
        seed=seed + 1,
    )

    # Throttled system: unmodified delayed handling, throttle at source.
    # Both legs share the same warm world; the throttle (like a policy
    # swap) is only consulted at IRQ delivery, so installing it on the
    # t=0 fork is indistinguishable from installing it before start().
    warm = (build_warm_world(system, NeverInterpose(), intervals)
            if shared_warmup else None)
    if warm is not None:
        hv_throttled, devices = restore_world(warm)
        timer = devices[IRQ_TIMER_DEVICE]
        throttle = MinDistanceThrottle(dmin)
        hv_throttled.irq_source(system.irq_name).throttle = throttle
    else:
        hv_throttled, timer = system.build(NeverInterpose(), intervals)
        throttle = MinDistanceThrottle(dmin)
        hv_throttled.irq_source(system.irq_name).throttle = throttle
        hv_throttled.start()
        timer.arm_next()
    hv_throttled.run_until_irq_count(
        len(intervals), limit_cycles=round(600.0 * system.frequency_hz)
    )
    from repro.metrics.stats import summarize
    latencies = hv_throttled.latency_columns.latencies_us_array(clock)
    throttled = ScenarioSummary(
        records=hv_throttled.latency_records,
        latencies_us=latencies,
        summary=summarize(latencies),
        mode_counts={m.value: c for m, c in hv_throttled.mode_counts().items()},
        context_switch_counts={
            r.value: c for r, c in hv_throttled.context_switches.counts.items()
        },
        total_context_switches=hv_throttled.context_switches.total,
    )

    if warm is not None:
        def install_monitor(hv, timer, source) -> None:
            source.policy = MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(dmin)
            )

        monitored = run_irq_scenario_from(warm, system,
                                          configure=install_monitor)
    else:
        monitored = run_irq_scenario(
            system, MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
            intervals,
        )
    return ThrottleAblationResult(
        throttled=throttled,
        monitored=monitored.lightweight(),
        suppressed_irqs=throttle.suppressed_count,
    )


@dataclass
class DepthAblationResult:
    """l = 1 vs l = 5 monitoring at matched long-run admitted rate."""

    shallow_dmin_us: float
    deep_table_us: list[float]
    shallow: ScenarioSummary
    deep: ScenarioSummary

    @property
    def deep_monitor_wins(self) -> bool:
        """The deep table tolerates the trace's bursts (admitting them
        within its long-run budget) that the rate-equivalent single
        d_min must deny, so its average latency is lower."""
        return self.deep.avg_latency_us < self.shallow.avg_latency_us


def run_depth_ablation(system: "PaperSystemConfig | None" = None,
                       activation_count: int = 3_000,
                       depth: int = 5,
                       seed: int = 29,
                       shared_warmup: bool = True) -> DepthAblationResult:
    """Why the monitor supports l > 1 tables (Appendix A setup).

    Both monitors are derived from the same learned trace statistics
    and admit (asymptotically) the same long-run interposing rate:

    * **deep** — the full learned δ⁻[l] table: small consecutive
      distances (bursts pass) bounded by the deeper entries;
    * **shallow** — a single d_min chosen as δ⁻(l+1)/l, the deep
      table's asymptotic rate, which has no burst tolerance.
    """
    from repro.analysis.event_models import TraceEventModel
    from repro.workloads.automotive import (
        AutomotiveTraceConfig,
        generate_automotive_trace,
    )

    system = system or PaperSystemConfig()
    clock = system.clock()
    trace = generate_automotive_trace(
        AutomotiveTraceConfig(activation_count=activation_count, seed=seed),
        clock,
    )
    model = TraceEventModel(trace.times)
    table = model.learned_delta_table(depth)
    shallow_dmin = max(1, round(table[-1] / depth))

    intervals = trace.distance_array()
    if shared_warmup:
        warm = build_warm_world(system, NeverInterpose(), intervals)

        def install(make_monitor):
            def configure(hv, timer, source) -> None:
                source.policy = MonitoredInterposing(make_monitor())
            return configure

        deep = run_irq_scenario_from(
            warm, system, configure=install(lambda: DeltaMinusMonitor(table))
        )
        shallow = run_irq_scenario_from(
            warm, system,
            configure=install(
                lambda: DeltaMinusMonitor.from_dmin(shallow_dmin)),
        )
    else:
        deep = run_irq_scenario(
            system, MonitoredInterposing(DeltaMinusMonitor(table)), intervals
        )
        shallow = run_irq_scenario(
            system,
            MonitoredInterposing(DeltaMinusMonitor.from_dmin(shallow_dmin)),
            intervals,
        )
    return DepthAblationResult(
        shallow_dmin_us=clock.cycles_to_us(shallow_dmin),
        deep_table_us=[clock.cycles_to_us(value) for value in table],
        shallow=shallow.lightweight(),
        deep=deep.lightweight(),
    )


def render_depth_ablation(result: DepthAblationResult) -> str:
    rows = [
        [f"δ⁻[l={len(result.deep_table_us)}] table",
         f"{result.deep.avg_latency_us:.0f}",
         result.deep.mode_counts.get("interposed", 0),
         result.deep.mode_counts.get("delayed", 0)],
        [f"single d_min = {result.shallow_dmin_us:.0f} us",
         f"{result.shallow.avg_latency_us:.0f}",
         result.shallow.mode_counts.get("interposed", 0),
         result.shallow.mode_counts.get("delayed", 0)],
    ]
    return render_table(
        ["monitoring condition", "avg latency (us)", "interposed", "delayed"],
        rows,
        title="abl-depth — burst tolerance of deep δ⁻ tables "
              "(same long-run budget)",
    )


def render_boost_ablation(result: BoostAblationResult) -> str:
    rows = [
        ["monitored (paper)",
         f"{result.monitored.avg_latency_us:.0f}",
         f"{result.monitored_worst_interference_us:.0f}",
         "yes" if result.monitored_within_budget else "NO"],
        ["boost (Xen-style)",
         f"{result.boosted.avg_latency_us:.0f}",
         f"{result.boosted_worst_interference_us:.0f}",
         "no" if result.boost_breaks_budget else "YES"],
    ]
    return render_table(
        ["mechanism", "avg latency (us)",
         f"worst interference in {result.window_us:.0f} us window (us)",
         f"within Eq.14 budget ({result.bound_us:.0f} us)"],
        rows,
        title="abl-boost — latency vs temporal independence under bursts",
    )


def render_throttle_ablation(result: ThrottleAblationResult) -> str:
    rows = [
        ["throttled source (R&D)",
         f"{result.throttled.avg_latency_us:.0f}",
         result.suppressed_irqs,
         len(result.throttled.records)],
        ["monitored interposing (paper)",
         f"{result.monitored.avg_latency_us:.0f}",
         0,
         len(result.monitored.records)],
    ]
    return render_table(
        ["mechanism", "avg latency (us)", "IRQs suppressed", "IRQs served"],
        rows,
        title="abl-throttle — overload protection is not latency reduction",
    )
