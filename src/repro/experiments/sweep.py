"""Experiment abl-sweep — design-space sweeps (Sections 3 and 5.1).

Two sweeps substantiate the paper's structural claims:

* **TDMA cycle sweep** — scaling all slot lengths shows that the
  classic worst-case latency grows linearly with the cycle length
  while the interposed worst case is flat (observation 2 of
  Section 5.1: "Worst-case interrupt latencies are independent of the
  TDMA cycle if interrupts arrive according to the specified d_min").
  This is why "reduction of the TDMA cycle length ... is not always an
  option" (Section 1) motivates the mechanism in the first place.
* **d_min sweep** — varying the monitoring condition trades average
  latency against the interference budget C'_BH/d_min that other
  partitions must tolerate (Eq. 2/Eq. 14).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.analysis.event_models import PeriodicEventModel
from repro.analysis.latency import classic_irq_latency, interposed_irq_latency
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import (
    PaperSystemConfig,
    build_warm_world,
    fork_point_snapshot,
    run_irq_scenario,
    run_irq_scenario_from,
)
from repro.metrics.report import render_table
from repro.sim.snapshot import WorldSnapshot
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals


@dataclass
class CycleSweepPoint:
    """One TDMA-cycle scale factor's bounds and measurements."""

    scale: float
    tdma_cycle_us: float
    classic_bound_us: float
    interposed_bound_us: float
    classic_measured_avg_us: float
    interposed_measured_avg_us: float
    classic_measured_max_us: float
    interposed_measured_max_us: float


def run_cycle_sweep_point(scale: float,
                          system: "PaperSystemConfig | None" = None,
                          dmin_us: float = 1_444.0,
                          irq_count: int = 1_000,
                          seed: int = 17,
                          shared_warmup: bool = True) -> CycleSweepPoint:
    """One TDMA-cycle scale factor (the campaign runner's task unit).

    The interarrival array is deterministic in (irq_count, dmin, seed),
    so every point regenerates the identical stream the serial sweep
    shares across its loop iterations.

    With ``shared_warmup`` (the default) the classic and interposed
    legs fork one warm world captured at its t=0 quiescent point
    instead of each constructing the scaled system from scratch; the
    legs differ only in the policy installed on the fork, so the
    results are byte-identical to two straight-line runs.
    """
    base = system or PaperSystemConfig()
    clock = base.clock()
    dmin = clock.us_to_cycles(dmin_us)
    c_th = clock.us_to_cycles(base.top_handler_us)
    c_bh = clock.us_to_cycles(base.bottom_handler_us)
    model = PeriodicEventModel(dmin)
    intervals = clip_to_dmin(
        exponential_interarrivals(irq_count, dmin, seed=seed), dmin
    )
    system_scaled = replace(
        base,
        app_slot_us=base.app_slot_us * scale,
        housekeeping_slot_us=base.housekeeping_slot_us * scale,
    )
    cycle = clock.us_to_cycles(system_scaled.tdma_cycle_us)
    slot = clock.us_to_cycles(system_scaled.app_slot_us)
    classic_bound = classic_irq_latency(
        model, c_th, c_bh, cycle, slot, costs=base.costs
    )
    interposed_bound = interposed_irq_latency(
        model, c_th, c_bh, costs=base.costs
    )
    if shared_warmup:
        warm = build_warm_world(system_scaled, NeverInterpose(), intervals)
        classic_run = run_irq_scenario_from(warm, system_scaled)
        # The interposed leg is a data-level fork of the warm world
        # (policy spliced into a child layer, O(changes)) when the
        # snapshot is layered; both paths are byte-identical.
        interposed_warm, configure = fork_point_snapshot(
            warm, system_scaled,
            MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)))
        interposed_run = run_irq_scenario_from(interposed_warm, system_scaled,
                                               configure=configure)
    else:
        classic_run = run_irq_scenario(system_scaled, NeverInterpose(),
                                       intervals)
        interposed_run = run_irq_scenario(
            system_scaled,
            MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
            intervals,
        )
    return CycleSweepPoint(
        scale=scale,
        tdma_cycle_us=system_scaled.tdma_cycle_us,
        classic_bound_us=clock.cycles_to_us(
            classic_bound.response_time_cycles
        ),
        interposed_bound_us=clock.cycles_to_us(
            interposed_bound.response_time_cycles
        ),
        classic_measured_avg_us=classic_run.avg_latency_us,
        interposed_measured_avg_us=interposed_run.avg_latency_us,
        classic_measured_max_us=classic_run.max_latency_us,
        interposed_measured_max_us=interposed_run.max_latency_us,
    )


def run_cycle_sweep(system: "PaperSystemConfig | None" = None,
                    scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                    dmin_us: float = 1_444.0,
                    irq_count: int = 1_000,
                    seed: int = 17,
                    shared_warmup: bool = True) -> list[CycleSweepPoint]:
    """Scale the TDMA slot table and compare both mechanisms."""
    return [
        run_cycle_sweep_point(scale, system, dmin_us, irq_count, seed,
                              shared_warmup=shared_warmup)
        for scale in scales
    ]


@dataclass
class DminSweepPoint:
    """One monitoring condition's latency/interference trade-off."""

    dmin_us: float
    interference_budget_fraction: float   # C'_BH / d_min
    avg_latency_us: float
    max_latency_us: float
    interposed_fraction: float
    delayed_fraction: float


@dataclass(frozen=True)
class DminSweepWarmup:
    """The warm world every d_min sweep point forks its run from.

    All multipliers share the identical system and arrival stream —
    only the monitoring condition differs — so the construction +
    arming work is done once and captured at the t=0 quiescent point.
    ``key`` fingerprints the parameters the world was built under, so
    a point is never forked from a mismatched warm-up.
    """

    key: str
    snapshot: WorldSnapshot

    def digest(self) -> str:
        """Content digest folded into child-task cache fingerprints."""
        return self.snapshot.digest()


def _dmin_warmup_key(system: PaperSystemConfig, mean_interarrival_us: float,
                     irq_count: int, seed: int) -> str:
    payload = json.dumps({
        "system": dataclasses.asdict(system),
        "mean_interarrival_us": mean_interarrival_us,
        "irq_count": irq_count,
        "seed": seed,
    }, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_dmin_warmup(system: "PaperSystemConfig | None" = None,
                    mean_interarrival_us: float = 1_444.0,
                    irq_count: int = 1_000,
                    seed: int = 19) -> DminSweepWarmup:
    """Build and capture the shared warm world of the d_min sweep."""
    system = system or PaperSystemConfig()
    clock = system.clock()
    mean = clock.us_to_cycles(mean_interarrival_us)
    intervals = exponential_interarrivals(irq_count, mean, seed=seed)
    snapshot = build_warm_world(system, NeverInterpose(), intervals)
    return DminSweepWarmup(
        key=_dmin_warmup_key(system, mean_interarrival_us, irq_count, seed),
        snapshot=snapshot,
    )


def run_dmin_sweep_point(multiplier: float,
                         system: "PaperSystemConfig | None" = None,
                         mean_interarrival_us: float = 1_444.0,
                         irq_count: int = 1_000,
                         seed: int = 19,
                         warmup: "DminSweepWarmup | None" = None,
                         ) -> DminSweepPoint:
    """One d_min multiplier (the campaign runner's task unit).

    With a ``warmup`` (see :func:`run_dmin_warmup`) the point forks the
    shared warm world and installs its own monitoring condition on the
    fork; without one it builds the world straight-line.  Both paths
    produce byte-identical results, which the determinism tests pin.
    """
    system = system or PaperSystemConfig()
    clock = system.clock()
    mean = clock.us_to_cycles(mean_interarrival_us)
    c_bh_eff = system.effective_bottom_cycles(clock)
    dmin = round(mean * multiplier)
    if warmup is not None:
        if warmup.key != _dmin_warmup_key(system, mean_interarrival_us,
                                          irq_count, seed):
            raise ValueError(
                "d_min sweep warm-up was built under different parameters"
            )

        point_warm, configure = fork_point_snapshot(
            warmup.snapshot, system,
            MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)))
        run = run_irq_scenario_from(point_warm, system, configure=configure)
    else:
        intervals = exponential_interarrivals(irq_count, mean, seed=seed)
        run = run_irq_scenario(
            system,
            MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
            intervals,
        )
    total = len(run.records) or 1
    return DminSweepPoint(
        dmin_us=clock.cycles_to_us(dmin),
        interference_budget_fraction=c_bh_eff / dmin,
        avg_latency_us=run.avg_latency_us,
        max_latency_us=run.max_latency_us,
        interposed_fraction=run.mode_counts.get("interposed", 0) / total,
        delayed_fraction=run.mode_counts.get("delayed", 0) / total,
    )


def run_dmin_sweep(system: "PaperSystemConfig | None" = None,
                   dmin_multipliers: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
                   mean_interarrival_us: float = 1_444.0,
                   irq_count: int = 1_000,
                   seed: int = 19,
                   shared_warmup: bool = True) -> list[DminSweepPoint]:
    """Fix the arrival process, sweep the monitoring condition d_min.

    Larger d_min (a stricter condition) means a smaller interference
    budget for other partitions but more delayed IRQs — the knob a
    system integrator turns to trade latency against independence.
    All points share one warm world (see :func:`run_dmin_warmup`)
    unless ``shared_warmup`` is disabled.
    """
    warmup = None
    if shared_warmup:
        warmup = run_dmin_warmup(system, mean_interarrival_us, irq_count,
                                 seed)
    return [
        run_dmin_sweep_point(multiplier, system, mean_interarrival_us,
                             irq_count, seed, warmup=warmup)
        for multiplier in dmin_multipliers
    ]


def render_cycle_sweep(points: Sequence[CycleSweepPoint]) -> str:
    rows = [
        [f"{p.scale:g}x", f"{p.tdma_cycle_us:.0f}",
         f"{p.classic_bound_us:.0f}", f"{p.classic_measured_max_us:.0f}",
         f"{p.interposed_bound_us:.0f}", f"{p.interposed_measured_max_us:.0f}"]
        for p in points
    ]
    return render_table(
        ["scale", "T_TDMA (us)", "classic bound", "classic max",
         "interposed bound", "interposed max"],
        rows,
        title="abl-sweep — worst-case latency vs TDMA cycle length (us)",
    )


def render_dmin_sweep(points: Sequence[DminSweepPoint]) -> str:
    rows = [
        [f"{p.dmin_us:.0f}",
         f"{100 * p.interference_budget_fraction:.1f}%",
         f"{p.avg_latency_us:.0f}",
         f"{100 * p.interposed_fraction:.0f}%",
         f"{100 * p.delayed_fraction:.0f}%"]
        for p in points
    ]
    return render_table(
        ["d_min (us)", "interference budget", "avg latency (us)",
         "interposed", "delayed"],
        rows,
        title="abl-sweep — latency vs interference budget (d_min knob)",
    )
