"""The single source of truth for experiment sizes.

EXPERIMENTS.md describes the paper-scale fig6 runs as 15000 IRQs per
scenario; that is 3 interrupt loads x 5000 IRQs per load (Section 6.1
runs U_IRQ in {1 %, 5 %, 10 %} cumulatively), so ``fig6_irqs_per_load``
is 5000 at paper scale.  Every entry point — the
``python -m repro.experiments`` CLI (full / ``--quick`` / ``--smoke``)
and the pytest benchmarks (``--paper-scale``) — resolves its IRQ
counts from this module so the tiers can never drift apart again.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """IRQ / activation counts for one tier of experiment runs."""

    name: str
    #: IRQs per interrupt load; fig6 runs 3 loads, so the per-scenario
    #: total is three times this (15000 at paper scale).
    fig6_irqs_per_load: int
    #: Activations of the automotive trace (paper: ~11000).
    fig7_activations: int
    tab62_irqs_per_load: int
    validation_irqs: int
    #: abl-boost / abl-throttle IRQ count.
    ablation_irqs: int
    #: abl-depth trace activations.
    ablation_depth_activations: int
    design_irqs: int
    sweep_irqs: int


#: Full paper-scale counts (the defaults of the respective run_*
#: functions; fig6: 3 x 5000 = 15000 IRQs per scenario).
PAPER = ExperimentScale(
    name="paper",
    fig6_irqs_per_load=5_000,
    fig7_activations=11_000,
    tab62_irqs_per_load=2_000,
    validation_irqs=3_000,
    ablation_irqs=1_500,
    ablation_depth_activations=3_000,
    design_irqs=600,
    sweep_irqs=1_000,
)

#: Reduced counts for a fast interactive run (CLI ``--quick``).
QUICK = ExperimentScale(
    name="quick",
    fig6_irqs_per_load=1_000,
    fig7_activations=3_000,
    tab62_irqs_per_load=500,
    validation_irqs=1_000,
    ablation_irqs=500,
    ablation_depth_activations=1_500,
    design_irqs=300,
    sweep_irqs=300,
)

#: Tiny counts for smoke tests of the campaign machinery itself
#: (CLI ``--smoke``); statistics at this size are meaningless.
SMOKE = ExperimentScale(
    name="smoke",
    fig6_irqs_per_load=150,
    fig7_activations=600,
    tab62_irqs_per_load=100,
    validation_irqs=200,
    ablation_irqs=120,
    ablation_depth_activations=400,
    design_irqs=60,
    sweep_irqs=80,
)


def resolve_scale(quick: bool = False, smoke: bool = False) -> ExperimentScale:
    """Map the CLI flags to a scale tier (smoke wins over quick)."""
    if smoke:
        return SMOKE
    if quick:
        return QUICK
    return PAPER
