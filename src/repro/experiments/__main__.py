"""Command-line entry point for the paper-reproduction experiments.

Usage::

    python -m repro.experiments fig6a            # full paper-scale run
    python -m repro.experiments fig6b --quick    # reduced IRQ counts
    python -m repro.experiments all

Experiment ids match the per-experiment index in DESIGN.md:
fig6a, fig6b, fig6c, fig7, tab62, validation, ablation, sweep.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablation import (
    render_boost_ablation,
    render_depth_ablation,
    render_throttle_ablation,
    run_boost_ablation,
    run_depth_ablation,
    run_throttle_ablation,
)
from repro.experiments.design import render_design, run_design
from repro.experiments.fig6 import Fig6Config, render_fig6, run_fig6
from repro.experiments.fig7 import Fig7Config, render_fig7, run_fig7
from repro.experiments.overhead import render_overhead, run_overhead
from repro.experiments.sweep import (
    render_cycle_sweep,
    render_dmin_sweep,
    run_cycle_sweep,
    run_dmin_sweep,
)
from repro.experiments.validation import render_validation, run_validation
from repro.workloads.automotive import AutomotiveTraceConfig

EXPERIMENTS = ("fig6a", "fig6b", "fig6c", "fig7", "tab62",
               "validation", "ablation", "sweep", "design")


def _run_one(name: str, quick: bool, seed: int,
             export_dir: "str | None" = None) -> str:
    if name.startswith("fig6"):
        scenario = name[-1]
        config = Fig6Config(irqs_per_load=1_000 if quick else 5_000, seed=seed)
        result = run_fig6(scenario, config)
        if export_dir is not None:
            _export_fig6(export_dir, name, result)
        return render_fig6(result)
    if name == "fig7":
        trace = AutomotiveTraceConfig(
            activation_count=3_000 if quick else 11_000, seed=seed
        )
        results = run_fig7(Fig7Config(trace=trace))
        if export_dir is not None:
            _export_fig7(export_dir, results)
        return render_fig7(results)
    if name == "tab62":
        result = run_overhead(irqs_per_load=500 if quick else 2_000, seed=seed)
        return render_overhead(result)
    if name == "validation":
        result = run_validation(irq_count=1_000 if quick else 3_000, seed=seed)
        return render_validation(result)
    if name == "ablation":
        boost = run_boost_ablation(irq_count=500 if quick else 1_500, seed=seed)
        throttle = run_throttle_ablation(
            irq_count=500 if quick else 1_500, seed=seed
        )
        depth = run_depth_ablation(
            activation_count=1_500 if quick else 3_000
        )
        return (render_boost_ablation(boost) + "\n\n"
                + render_throttle_ablation(throttle) + "\n\n"
                + render_depth_ablation(depth))
    if name == "design":
        return render_design(run_design(irq_count=300 if quick else 600))
    if name == "sweep":
        cycle = run_cycle_sweep(irq_count=300 if quick else 1_000, seed=seed)
        dmin = run_dmin_sweep(irq_count=300 if quick else 1_000, seed=seed)
        return render_cycle_sweep(cycle) + "\n\n" + render_dmin_sweep(dmin)
    raise ValueError(f"unknown experiment {name!r}")


def _export_fig6(export_dir: str, name: str, result) -> None:
    from pathlib import Path

    from repro.metrics.export import write_histogram_csv, write_series_csv

    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    write_histogram_csv(directory / f"{name}_histogram.csv", result.histogram)
    write_series_csv(directory / f"{name}_latencies.csv",
                     result.latencies_us, column="latency_us")


def _export_fig7(export_dir: str, results) -> None:
    from pathlib import Path

    from repro.metrics.export import write_series_csv

    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for label, case in results.items():
        write_series_csv(directory / f"fig7_{label}_running_avg.csv",
                         case.series_us, column="avg_latency_us")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ("all",),
                        help="experiment id (see DESIGN.md)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced IRQ counts for a fast smoke run")
    parser.add_argument("--seed", type=int, default=1,
                        help="base random seed (default 1)")
    parser.add_argument("--export", metavar="DIR", default=None,
                        help="write CSV data (histograms, latency series) "
                             "to this directory")
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        started = time.time()
        output = _run_one(name, args.quick, args.seed, args.export)
        elapsed = time.time() - started
        print(f"=== {name} ({elapsed:.1f}s) " + "=" * max(0, 50 - len(name)))
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
