"""Command-line entry point for the paper-reproduction experiments.

Usage::

    python -m repro.experiments fig6a               # full paper-scale run
    python -m repro.experiments fig6b --quick       # reduced IRQ counts
    python -m repro.experiments all --jobs 4        # parallel campaign
    python -m repro.experiments all --smoke --jobs 2  # CI smoke target

Experiment ids match the per-experiment index in DESIGN.md:
fig6a, fig6b, fig6c, fig7, tab62, validation, ablation, sweep, design.

Campaigns decompose into independent tasks (see
:mod:`repro.experiments.runner`) executed across ``--jobs`` worker
processes; results are byte-identical for every jobs count because the
per-task seeds are derived deterministically and merges consume task
results in serial order.  Timing goes to stderr so stdout can be
diffed across jobs counts.

Campaigns are **incremental** by default: task results are replayed
from a content-addressed on-disk cache (see
:mod:`repro.experiments.cache`) whenever kind, kwargs — which carry
the scale and seed — and the transitive source fingerprint all match
a previous run, so a warm re-run skips simulation entirely while
staying byte-identical.  ``--no-cache`` restores the recompute-always
behaviour, ``--cache-dir`` relocates the store (default:
``.repro-cache`` or ``$REPRO_CACHE_DIR``), ``--cache-stats`` prints
hit/miss/bytes/time-saved counters to stderr.

Observability (see docs/reproducing.md): ``--metrics-json FILE``
writes a metrics snapshot of the run (engine, hypervisor/IRQ path,
cache, campaign runner), ``--trace-out FILE`` writes a Chrome
trace-event JSON (open in ui.perfetto.dev) from a deterministic
traced replay at this run's scale and seed, ``--progress`` streams
per-task completion to stderr, and ``--export DIR`` also drops a
``manifest.json`` describing the invocation next to the CSVs.

``--store DIR`` additionally persists one columnar run artifact per
campaign task (plus a campaign index) into ``DIR`` — see
:mod:`repro.store` — and the ``query`` subcommand answers filter /
aggregate / diff questions over such directories without re-running
any simulation::

    python -m repro.experiments query aggregate store/ --percentiles 99.9
    python -m repro.experiments query diff store-a/ store-b/
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.ablation import (
    render_boost_ablation,
    render_depth_ablation,
    render_throttle_ablation,
)
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.design import render_design
from repro.experiments.fig6 import render_fig6
from repro.experiments.fig7 import render_fig7
from repro.experiments.overhead import render_overhead
from repro.experiments.runner import (
    SCHEDULES,
    CampaignTelemetry,
    run_campaign,
    write_bench_json,
)
from repro.experiments.scale import resolve_scale
from repro.sim.engine import ENV_IDLE_SKIP
from repro.sim.queue import (
    DEFAULT_QUEUE_BACKEND,
    ENV_QUEUE_BACKEND,
    QUEUE_BACKENDS,
)
from repro.sim.snapshot import SnapshotError
from repro.sim.worldstore import ENV_STORE_BUDGET, parse_store_budget
from repro.experiments.sweep import render_cycle_sweep, render_dmin_sweep
from repro.experiments.validation import render_validation

EXPERIMENTS = ("fig6a", "fig6b", "fig6c", "fig7", "tab62",
               "validation", "ablation", "sweep", "design")

#: Convenience aliases expanding to several experiment ids.
ALIASES = {
    "all": EXPERIMENTS,
    "fig6": ("fig6a", "fig6b", "fig6c"),
}


def _render_one(name: str, result, export_dir: "str | None") -> str:
    """Render one experiment's merged campaign result."""
    if name.startswith("fig6"):
        if export_dir is not None:
            _export_fig6(export_dir, name, result)
        return render_fig6(result)
    if name == "fig7":
        if export_dir is not None:
            _export_fig7(export_dir, result)
        return render_fig7(result)
    if name == "tab62":
        return render_overhead(result)
    if name == "validation":
        return render_validation(result)
    if name == "ablation":
        boost, throttle, depth = result
        return (render_boost_ablation(boost) + "\n\n"
                + render_throttle_ablation(throttle) + "\n\n"
                + render_depth_ablation(depth))
    if name == "design":
        return render_design(result)
    if name == "sweep":
        cycle, dmin = result
        return render_cycle_sweep(cycle) + "\n\n" + render_dmin_sweep(dmin)
    raise ValueError(f"unknown experiment {name!r}")


def _export_fig6(export_dir: str, name: str, result) -> None:
    from pathlib import Path

    from repro.metrics.export import write_histogram_csv, write_series_csv

    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    write_histogram_csv(directory / f"{name}_histogram.csv", result.histogram)
    write_series_csv(directory / f"{name}_latencies.csv",
                     result.latencies_us, column="latency_us")


def _export_fig7(export_dir: str, results) -> None:
    from pathlib import Path

    from repro.metrics.export import write_series_csv

    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for label, case in results.items():
        write_series_csv(directory / f"fig7_{label}_running_avg.csv",
                         case.series_us, column="avg_latency_us")


def _write_manifest(export_dir: str, *, names, scale, args, jobs: int,
                    experiment_seconds: "dict[str, float]",
                    cache) -> None:
    """Drop a ``manifest.json`` describing the run next to the CSVs."""
    import json
    from pathlib import Path

    import repro
    from repro.experiments.cache import source_fingerprint
    from repro.sim.engine import resolve_idle_skip
    from repro.sim.queue import resolve_backend_name

    directory = Path(export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format": "repro-export-manifest-v1",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "version": repro.__version__,
        "experiments": list(names),
        "scale": scale.name,
        "seed": args.seed,
        "jobs": jobs,
        # Engine configuration + transitive source digest: exported
        # CSVs carry the same fingerprint fields as store artifacts
        # and cache entries, so the three stay joinable.
        "queue_backend": resolve_backend_name(None),
        "idle_skip": resolve_idle_skip(None),
        "source_digest": source_fingerprint("repro.experiments.runner"),
        "experiment_wall_seconds": {
            name: round(seconds, 3)
            for name, seconds in experiment_seconds.items()
        },
        "total_wall_seconds": round(sum(experiment_seconds.values()), 3),
        "cache": cache.stats.as_dict() if cache is not None else None,
        "files": sorted(path.name for path in directory.glob("*.csv")),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2) + "\n"
    )


def _export_telemetry(args, *, scale, jobs: int, cache, telemetry,
                      store=None) -> None:
    """Serve ``--trace-out`` / ``--metrics-json``.

    Campaign workers run with tracing disabled, so the Chrome trace and
    the reconciled hypervisor counters come from a deterministic traced
    replay of one representative fig6b cell at this run's scale and
    seed (see :mod:`repro.telemetry.run`); cache and campaign-runner
    metrics are sampled from the run itself.
    """
    from repro.sim.worldstore import default_store
    from repro.telemetry import (
        MetricsRegistry,
        collect_cache,
        collect_campaign,
        export_traced_run,
        run_traced_fig6,
    )

    registry = MetricsRegistry() if args.metrics_json is not None else None
    replay = run_traced_fig6(irqs=scale.fig6_irqs_per_load, seed=args.seed)
    if store is not None:
        # The replay is the one in-process run with tracing enabled, so
        # it is the one artifact that carries trace columns; the
        # Chrome-trace exporter below reads those columns back (see
        # repro.telemetry.run), making the store the trace's source of
        # truth.
        store.write_traced_run(replay)
    # The process-global world store holds whatever warm-world layers
    # this invocation captured in-process (campaign workers keep their
    # own stores); exporting it adds the sim_world_* sharing metrics
    # and the capture-log Perfetto track.
    written = export_traced_run(
        replay,
        trace_path=args.trace_out,
        registry=registry,
        campaign=telemetry,
        world_store=default_store(),
        metadata={"scale": scale.name, "jobs": jobs},
    )
    if args.trace_out is not None:
        print(f"[trace] {written} events -> {args.trace_out} "
              f"(traced fig6b replay, scale={scale.name}, "
              f"seed={args.seed})", file=sys.stderr)
    if registry is not None:
        if cache is not None:
            collect_cache(registry, cache.stats)
        if telemetry is not None:
            collect_campaign(registry, telemetry)
        if store is not None:
            from repro.telemetry import collect_store

            collect_store(registry, write_stats=store.stats)
        registry.write_json(args.metrics_json, metadata={
            "scale": scale.name,
            "seed": args.seed,
            "jobs": jobs,
            "traced_replay": f"fig6{replay.scenario}",
        })
        print(f"[metrics] snapshot -> {args.metrics_json}", file=sys.stderr)


def main(argv: "list[str] | None" = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "query":
        # The query subcommand runs no experiments — it answers from
        # persisted artifacts — so it routes to its own parser before
        # the experiment parser constrains the positional.
        from repro.store.cli import main as query_main

        return query_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + tuple(ALIASES),
                        help="experiment id (see DESIGN.md), or an alias: "
                             "'all', 'fig6' (= fig6a+fig6b+fig6c); the "
                             "'query' subcommand (python -m "
                             "repro.experiments query --help) answers "
                             "aggregate/diff questions from a --store "
                             "directory without running experiments")
    scale_group = parser.add_mutually_exclusive_group()
    scale_group.add_argument("--quick", action="store_true",
                             help="reduced IRQ counts for a fast smoke run")
    scale_group.add_argument("--smoke", action="store_true",
                             help="tiny IRQ counts for CI smoke tests")
    scale_group.add_argument("--paper-scale", action="store_true",
                             help="full paper-scale IRQ counts (the default; "
                                  "spelled out for explicitness)")
    parser.add_argument("--seed", type=int, default=1,
                        help="base random seed (default 1); per-task seeds "
                             "are derived as seed + task index")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the campaign "
                             "(default: os.cpu_count(); 1 = serial, "
                             "in-process)")
    parser.add_argument("--no-shared-prefix", action="store_true",
                        help="do not fork fig7/sweep continuations from a "
                             "shared snapshot; re-simulate every task's "
                             "prefix straight-line (results are "
                             "byte-identical either way)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="directory of the incremental result cache "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every task; do not read or write "
                             "the result cache")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print cache hit/miss/bytes/time-saved "
                             "statistics to stderr")
    parser.add_argument("--export", metavar="DIR", default=None,
                        help="write CSV data (histograms, latency series) "
                             "to this directory")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persist one columnar run artifact per "
                             "campaign task (plus a campaign index) into "
                             "this directory; query later with "
                             "'python -m repro.experiments query'")
    parser.add_argument("--bench-json", metavar="FILE", default=None,
                        help="append per-experiment wall times and the "
                             "engine microbenchmark to this JSON history "
                             "(e.g. BENCH_experiments.json)")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write a metrics snapshot (engine, "
                             "hypervisor/IRQ path, cache, campaign runner) "
                             "as JSON after the run")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON (open in "
                             "ui.perfetto.dev) of a deterministic traced "
                             "replay of the fig6b scenario at this run's "
                             "scale and seed")
    parser.add_argument("--progress", action="store_true",
                        help="print per-task completion progress to stderr")
    parser.add_argument("--queue-backend", metavar="NAME", default=None,
                        choices=sorted(QUEUE_BACKENDS),
                        help="event-queue backend for every simulation in "
                             "this run (choices: "
                             f"{', '.join(sorted(QUEUE_BACKENDS))}; default: "
                             "$REPRO_QUEUE_BACKEND or "
                             f"{DEFAULT_QUEUE_BACKEND!r}); results are "
                             "byte-identical across backends, only speed "
                             "differs")
    parser.add_argument("--no-idle-skip", action="store_true",
                        help="disable the idle-skip engine (analytic "
                             "fast-forward across quiescent TDMA gaps) and "
                             "execute every boundary event tick by tick; "
                             "results are byte-identical either way, only "
                             "speed differs (default: $REPRO_IDLE_SKIP or "
                             "enabled)")
    parser.add_argument("--schedule", metavar="NAME", default="subtree",
                        choices=sorted(SCHEDULES),
                        help="campaign scheduling strategy: 'subtree' "
                             "(default) assigns each dependency chain to one "
                             "worker so parent snapshots cross the pool "
                             "boundary once; 'wave' dispatches topological "
                             "waves, re-shipping the parent to every child; "
                             "results are byte-identical either way")
    parser.add_argument("--store-budget", metavar="BYTES", default=None,
                        help="resident-bytes budget for the layered world "
                             "store (accepts k/m/g suffixes, e.g. 256k); "
                             "cold fragments beyond it spill to disk and "
                             "fault back transparently (default: "
                             "$REPRO_STORE_BUDGET or unlimited); results "
                             "are byte-identical either way")
    args = parser.parse_args(arguments)

    if args.queue_backend is not None:
        # Via the environment so campaign worker processes inherit it.
        os.environ[ENV_QUEUE_BACKEND] = args.queue_backend
    if args.no_idle_skip:
        os.environ[ENV_IDLE_SKIP] = "0"
    if args.store_budget is not None:
        try:
            parse_store_budget(args.store_budget)
        except SnapshotError as exc:
            parser.error(str(exc))
        # Via the environment so campaign worker processes (and every
        # lazily created store, including default_store) inherit it.
        os.environ[ENV_STORE_BUDGET] = args.store_budget

    names = ALIASES.get(args.experiment, (args.experiment,))
    scale = resolve_scale(quick=args.quick, smoke=args.smoke)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    instrument = (args.metrics_json is not None
                  or args.trace_out is not None
                  or args.bench_json is not None
                  or args.progress)
    telemetry = CampaignTelemetry() if instrument else None

    def show_progress(done: int, total: int, task) -> None:
        print(f"[{task.experiment}] task {done}/{total} done ({task.kind})",
              file=sys.stderr)

    progress = show_progress if args.progress else None

    store = None
    if args.store is not None:
        from repro.store import CampaignStoreWriter, campaign_metadata

        store = CampaignStoreWriter(
            args.store,
            campaign_metadata(scale_name=scale.name, seed=args.seed,
                              jobs=jobs),
        )

    experiment_seconds: "dict[str, float]" = {}
    for name in names:
        started = time.perf_counter()
        merged = run_campaign((name,), scale, seed=args.seed, jobs=jobs,
                              cache=cache, telemetry=telemetry,
                              progress=progress,
                              shared_prefix=not args.no_shared_prefix,
                              store=store, schedule=args.schedule)
        output = _render_one(name, merged[name], args.export)
        elapsed = time.perf_counter() - started
        experiment_seconds[name] = elapsed
        print(f"[{name}] {elapsed:.1f}s (scale={scale.name}, jobs={jobs})",
              file=sys.stderr)
        print(f"=== {name} " + "=" * max(0, 50 - len(name)))
        print(output)
        print()

    if args.cache_stats and cache is not None:
        print(f"[cache] {cache.stats.render()} dir={cache.directory}",
              file=sys.stderr)

    if args.export is not None:
        _write_manifest(args.export, names=names, scale=scale, args=args,
                        jobs=jobs, experiment_seconds=experiment_seconds,
                        cache=cache)

    if args.metrics_json is not None or args.trace_out is not None:
        _export_telemetry(args, scale=scale, jobs=jobs, cache=cache,
                          telemetry=telemetry, store=store)

    if store is not None:
        stats = store.finalize()
        print(f"[store] {stats.artifacts_written} artifacts, "
              f"{stats.rows_written} latency rows, "
              f"{stats.bytes_written:,} bytes -> {args.store} "
              f"({stats.write_seconds:.2f}s; "
              f"{stats.skipped_tasks} tasks without latency data)",
              file=sys.stderr)

    if args.bench_json is not None:
        from repro.analysis.benchmark import measure_analysis_speedup
        from repro.sim.benchmark import (
            measure_backend_ab,
            measure_engine_throughput,
            measure_fork_ab,
            measure_idle_ab,
            measure_subtree_ab,
        )
        from repro.store.benchmark import measure_store_ab

        engine = measure_engine_throughput()
        engine_ab = measure_backend_ab()
        engine_idle_ab = measure_idle_ab()
        engine_fork_ab = measure_fork_ab()
        engine_subtree_ab = measure_subtree_ab()
        analysis = measure_analysis_speedup()
        store_ab = measure_store_ab()
        record = write_bench_json(
            args.bench_json,
            scale_name=scale.name, jobs=jobs,
            experiment_seconds=experiment_seconds, engine=engine,
            engine_ab=engine_ab,
            engine_idle_ab=engine_idle_ab,
            engine_fork_ab=engine_fork_ab,
            engine_subtree_ab=engine_subtree_ab,
            analysis=analysis,
            cache=cache.stats if cache is not None else None,
            telemetry=telemetry,
            store_ab=store_ab,
        )
        ab = record["engine_ab"]
        idle = record["engine_idle_ab"]
        fork = record["engine_fork_ab"]
        subtree = record["engine_subtree_ab"]
        store_rec = record["store_ab"]
        print(f"[bench] engine {record['engine']['events_per_second']:,.0f} "
              f"events/s (backend={record['engine']['backend']}); "
              f"A/B winner {ab['winner']} "
              f"{ab['improvement_vs_legacy']:+.1%} vs legacy; "
              f"idle-skip {idle['speedup']:.1f}x "
              f"({idle['skipped_events']:,} events elided); "
              f"layered forks {fork['speedup']:.1f}x "
              f"({fork['memory_ratio']:.1f}x less memory over "
              f"{fork['branches']} branches); "
              f"subtree schedule {subtree['speedup']:.1f}x "
              f"({subtree['memory_ratio']:.1f}x less peak memory over "
              f"{subtree['branches']} branches, "
              f"{subtree['spilled_fragments']} fragments spilled); "
              f"analysis memoization "
              f"{record['analysis']['speedup']:.1f}x; "
              f"store capture {store_rec['write_ratio']:+.1%} write ratio "
              f"(A/B {store_rec['overhead']:+.1%}; "
              f"{store_rec['artifacts']} artifacts, "
              f"{store_rec['rows']} rows); "
              f"history appended to {args.bench_json}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
