"""Shared experiment infrastructure.

:class:`PaperSystemConfig` captures the evaluation platform of
Section 6.1: an ARM926ej-s at 200 MHz, two application partitions with
6000 µs TDMA slots plus a 2000 µs housekeeping partition
(T_TDMA = 14000 µs), and one monitored IRQ source whose timer is
re-armed from the top handler with a pre-generated interarrival array.

``C_TH`` and ``C_BH`` are not stated numerically in the paper; the
defaults here (2 µs and 40 µs) are chosen so the direct-handling
latency cluster falls in the paper's "up to 50 µs" band while the
interposing overheads use the measured Section 6.2 values.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.policy import HandlingMode, InterposingPolicy
from repro.hypervisor.config import CostModel, HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor, LatencyRecord
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.metrics.stats import LatencySummary, summarize
from repro.sim.clock import Clock
from repro.sim.snapshot import (WorldSnapshot, class_path, resolve_class,
                                restore_world)
from repro.sim.timers import IntervalSequenceTimer
from repro.sim.worldstore import (LayeredSnapshot, WorldStore,
                                  capture_world_layered, default_store,
                                  fork_snapshot)

#: Device name under which the IRQ-generating timer registers in world
#: snapshots; :func:`run_irq_scenario_from` looks it up on restore.
IRQ_TIMER_DEVICE = "irq-gen"


@dataclass
class PaperSystemConfig:
    """The Section 6.1 evaluation system, parameterized."""

    frequency_hz: int = 200_000_000
    app_slot_us: float = 6_000.0
    housekeeping_slot_us: float = 2_000.0
    top_handler_us: float = 2.0
    bottom_handler_us: float = 40.0
    subscriber: str = "P1"
    other_partition: str = "P2"
    housekeeping: str = "HK"
    irq_line: int = 5
    irq_name: str = "irq0"
    costs: CostModel = field(default_factory=CostModel)
    trace_enabled: bool = False
    record_cpu_segments: bool = False
    defer_slot_switch_for_window: bool = True

    def clock(self) -> Clock:
        return Clock(self.frequency_hz)

    @property
    def tdma_cycle_us(self) -> float:
        return 2 * self.app_slot_us + self.housekeeping_slot_us

    @property
    def foreign_time_us(self) -> float:
        """T_TDMA - T_i: the worst-case slot wait of delayed handling."""
        return self.tdma_cycle_us - self.app_slot_us

    def slot_table(self, clock: Clock) -> list[SlotConfig]:
        return [
            SlotConfig(self.subscriber, clock.us_to_cycles(self.app_slot_us)),
            SlotConfig(self.other_partition, clock.us_to_cycles(self.app_slot_us)),
            SlotConfig(self.housekeeping,
                       clock.us_to_cycles(self.housekeeping_slot_us)),
        ]

    def effective_bottom_cycles(self, clock: Clock) -> int:
        """C'_BH (Eq. 13) in cycles."""
        return self.costs.effective_bottom_handler_cycles(
            clock.us_to_cycles(self.bottom_handler_us)
        )

    def build(self, policy: InterposingPolicy,
              intervals: Sequence[int]) -> tuple[Hypervisor, IntervalSequenceTimer]:
        """Construct the hypervisor system with the IRQ timer wired up.

        ``intervals`` is the pre-generated interarrival array (cycles);
        the timer is re-armed from within each top handler, exactly as
        in the paper's measurement protocol.  Call ``hv.start()`` and
        ``timer.arm_next()`` to begin.
        """
        clock = self.clock()
        hv_config = HypervisorConfig(
            frequency_hz=self.frequency_hz,
            costs=self.costs,
            trace_enabled=self.trace_enabled,
            record_cpu_segments=self.record_cpu_segments,
            defer_slot_switch_for_window=self.defer_slot_switch_for_window,
        )
        hv = Hypervisor(self.slot_table(clock), hv_config)
        for name in (self.subscriber, self.other_partition, self.housekeeping):
            hv.add_partition(Partition(name))
        source = IrqSource(
            name=self.irq_name,
            line=self.irq_line,
            subscriber=self.subscriber,
            top_handler_cycles=clock.us_to_cycles(self.top_handler_us),
            bottom_handler_cycles=clock.us_to_cycles(self.bottom_handler_us),
            policy=policy,
        )
        hv.add_irq_source(source)
        timer = IntervalSequenceTimer(hv.engine, hv.intc, line=self.irq_line,
                                      intervals=intervals,
                                      name=IRQ_TIMER_DEVICE)
        # A bound method rather than a lambda: world snapshots record
        # the hook as (device, method-name) and re-bind it on restore.
        source.on_top_handler = timer.on_irq_top
        return hv, timer


@dataclass
class ScenarioSummary:
    """The picklable essence of one scenario run.

    Mirrors the read-only API of :class:`ScenarioResult` minus the live
    :class:`Hypervisor`, whose callbacks make it unpicklable.  Campaign
    workers return summaries across process boundaries; anything that
    needs the hypervisor itself (ledgers, guest kernels) must be
    extracted inside the worker.

    The same pickle round trip is what the incremental result cache
    (:mod:`repro.experiments.cache`) replays across *runs*, so task
    results must stay plain picklable data — no callbacks, no open
    handles — and task kwargs must stay canonicalizable dataclasses /
    primitives so their content fingerprint is stable.

    ``latencies_us`` is a columnar ``array('d')`` (cheap to pickle,
    summarize and merge); it compares elementwise against other arrays,
    so summary-vs-summary equality still works, but code comparing it
    against a plain list must wrap one side.
    """

    records: list[LatencyRecord]
    latencies_us: "array | list[float]"
    summary: LatencySummary
    mode_counts: dict[str, int]
    context_switch_counts: dict[str, int]
    total_context_switches: int = 0

    @property
    def avg_latency_us(self) -> float:
        return self.summary.mean

    @property
    def max_latency_us(self) -> float:
        return self.summary.maximum

    def mode_fraction(self, mode: HandlingMode) -> float:
        total = sum(self.mode_counts.values())
        if total == 0:
            return 0.0
        return self.mode_counts.get(mode.value, 0) / total


@dataclass
class ScenarioResult:
    """Everything a benchmark or test needs from one scenario run.

    ``latencies_us`` is the columnar ``array('d')`` form (completion
    order, same floats as ``hv.latencies_us()``).
    """

    records: list[LatencyRecord]
    latencies_us: "array | list[float]"
    summary: LatencySummary
    mode_counts: dict[str, int]
    context_switch_counts: dict[str, int]
    hypervisor: Hypervisor

    @property
    def avg_latency_us(self) -> float:
        return self.summary.mean

    @property
    def max_latency_us(self) -> float:
        return self.summary.maximum

    def mode_fraction(self, mode: HandlingMode) -> float:
        total = sum(self.mode_counts.values())
        if total == 0:
            return 0.0
        return self.mode_counts.get(mode.value, 0) / total

    def lightweight(self) -> ScenarioSummary:
        """Strip the hypervisor so the result can cross process lines."""
        return ScenarioSummary(
            records=self.records,
            latencies_us=self.latencies_us,
            summary=self.summary,
            mode_counts=self.mode_counts,
            context_switch_counts=self.context_switch_counts,
            total_context_switches=self.hypervisor.context_switches.total,
        )


def finish_irq_scenario(hv: Hypervisor, system: PaperSystemConfig,
                        expected: int,
                        limit_seconds: float = 600.0) -> ScenarioResult:
    """Run a started scenario world to completion and assemble results.

    Shared tail of :func:`run_irq_scenario` (straight-line) and
    :func:`run_irq_scenario_from` (forked continuation): the two paths
    must assemble results identically for forked runs to be
    byte-identical with straight-line ones.
    """
    clock = hv.clock
    completed = hv.run_until_irq_count(
        expected, limit_cycles=round(limit_seconds * system.frequency_hz)
    )
    if completed < expected:
        # Drain any stragglers still waiting for their home slot.
        hv.run_until(hv.engine.now + 2 * clock.us_to_cycles(system.tdma_cycle_us))
    records = hv.latency_records
    # Columnar: one array('d') straight off the latency columns, with
    # the same per-element cycles_to_us conversion as the record path.
    latencies = hv.latency_columns.latencies_us_array(clock)
    mode_counts = {
        mode.value: count for mode, count in hv.mode_counts().items()
    }
    ctx = {
        reason.value: count
        for reason, count in hv.context_switches.counts.items()
    }
    return ScenarioResult(
        records=records,
        latencies_us=latencies,
        summary=summarize(latencies),
        mode_counts=mode_counts,
        context_switch_counts=ctx,
        hypervisor=hv,
    )


def run_irq_scenario(system: PaperSystemConfig,
                     policy: InterposingPolicy,
                     intervals: Sequence[int],
                     limit_seconds: float = 600.0) -> ScenarioResult:
    """Run one IRQ-latency scenario to completion.

    The run ends when every generated IRQ's bottom handler completed
    (or at the safety time limit, which no well-formed configuration
    should reach).
    """
    hv, timer = system.build(policy, intervals)
    hv.start()
    timer.arm_next()
    # One IRQ per arm_next(), including the first.
    return finish_irq_scenario(hv, system, len(intervals), limit_seconds)


def build_warm_world(system: PaperSystemConfig,
                     policy: InterposingPolicy,
                     intervals: Sequence[int],
                     store: Optional[WorldStore] = None) -> WorldSnapshot:
    """Build, start and snapshot a scenario world at its t=0 quiescent point.

    The instant after ``start()`` + ``arm_next()`` — before the first
    arrival — is always quiescent: the only pending events are the TDMA
    boundary and the armed IRQ timer.  Sweep and ablation drivers
    capture this warm world once and fork per-point variants from it,
    skipping the (identical) construction work per point.

    The capture is interned into ``store`` (the per-process default
    when omitted), so warm worlds that share a prefix share storage
    and subsequent :func:`fork_warm_variant` branches cost O(changes);
    the returned :class:`~repro.sim.worldstore.LayeredSnapshot` has the
    same state and digest a flat :func:`capture_world` would produce.
    """
    hv, timer = system.build(policy, intervals)
    hv.start()
    timer.arm_next()
    snapshot, _basis = capture_world_layered(
        hv, {IRQ_TIMER_DEVICE: timer}, store or default_store())
    return snapshot


def fork_warm_variant(
    snapshot: LayeredSnapshot,
    policy: Optional[InterposingPolicy] = None,
    configure_policy: Optional[Callable[[InterposingPolicy], None]] = None,
    source_name: Optional[str] = None,
) -> LayeredSnapshot:
    """Fork a per-point variant at the data level — no live world.

    A branch node of a scenario tree differs from its parent only in
    one source's policy, so there is no need to restore, mutate and
    re-capture an entire world: the policy object alone is restored
    from its recorded state, replaced (``policy``) or mutated in place
    (``configure_policy``), re-serialized, and spliced into a child
    layer that shares every other part with the parent.  The result is
    byte-identical to ``restore_world`` → mutate → ``capture_world``
    (pinned by tests) at a fraction of the cost — this is the
    O(changes) fork the deep sweep trees rely on.
    """
    if (policy is None) == (configure_policy is None):
        raise ValueError("pass exactly one of policy/configure_policy")
    sources = snapshot.state["world"]["sources"]
    if source_name is None and len(sources) != 1:
        raise ValueError(
            f"snapshot has {len(sources)} IRQ sources; pass source_name")
    new_sources = []
    matched = False
    for sstate in sources:
        if source_name is not None and sstate["name"] != source_name:
            new_sources.append(sstate)
            continue
        matched = True
        if policy is not None:
            variant = policy
        else:
            policy_cls = resolve_class(sstate["policy"]["class"])
            variant = policy_cls.restore_from_snapshot(
                sstate["policy"]["state"])
            configure_policy(variant)
        new_sources.append(dict(sstate, policy={
            "class": class_path(type(variant)),
            "state": variant.snapshot_state(),
        }))
    if not matched:
        raise ValueError(f"snapshot has no IRQ source named {source_name!r}")
    return fork_snapshot(snapshot, {"world.sources": new_sources})


def fork_point_snapshot(snapshot: WorldSnapshot, system: PaperSystemConfig,
                        policy: InterposingPolicy):
    """Install ``policy`` on a warm world's IRQ source, preferring the
    O(changes) data-level fork.

    Returns ``(snapshot, configure)`` for
    :func:`run_irq_scenario_from`.  A layered snapshot is forked at the
    data level (:func:`fork_warm_variant`) and needs no configure hook;
    a flat one — e.g. a warm world that crossed a process boundary and
    pickled down to a plain :class:`WorldSnapshot` — keeps the classic
    restore-then-configure path.  Both are byte-identical, which the
    fork-tree property tests pin.
    """
    if isinstance(snapshot, LayeredSnapshot):
        return (fork_warm_variant(snapshot, policy=policy,
                                  source_name=system.irq_name), None)

    def install_policy(hv, timer, source) -> None:
        source.policy = policy

    return snapshot, install_policy


def run_irq_scenario_from(
    snapshot: WorldSnapshot,
    system: PaperSystemConfig,
    configure: Optional[Callable[[Hypervisor, IntervalSequenceTimer,
                                  IrqSource], None]] = None,
    limit_seconds: float = 600.0,
) -> ScenarioResult:
    """Fork a scenario continuation from a snapshot and run it out.

    ``configure(hv, timer, source)`` runs on the freshly restored world
    before execution resumes — the hook the drivers use to install a
    per-point policy/throttle variant (or re-target a still-learning
    policy's bound) on top of a shared warm-up.  The caller guarantees
    the configuration change is invisible to the already-executed
    prefix, so the continuation stays byte-identical to a straight-line
    run of the same variant.
    """
    hv, devices = restore_world(snapshot)
    timer = devices[IRQ_TIMER_DEVICE]
    source = hv.irq_source(system.irq_name)
    if configure is not None:
        configure(hv, timer, source)
    return finish_irq_scenario(hv, system, timer.interval_count, limit_seconds)
