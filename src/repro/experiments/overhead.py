"""Experiment tab62 — memory and runtime overhead (Section 6.2).

Reproduces the paper's overhead accounting:

* static memory: the mechanism's code/data footprint per component
  (paper constants, mapped onto our modules in
  :mod:`repro.hypervisor.footprint`);
* runtime costs: C_Mon (128 instructions), C_sched (877 instructions),
  C_ctx (~10000 cycles incl. cache writebacks) and the derived
  effective costs C'_TH / C'_BH (Eqs. 13/15);
* the dynamic effect: the increase in the total number of context
  switches when interposing is active (paper: ~10 % in scenario 2 with
  d_min = λ), measured by running the same d_min-adherent arrival
  sequence with and without monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import PaperSystemConfig, run_irq_scenario
from repro.hypervisor.footprint import (
    monitor_data_bytes,
    render_footprint_table,
    total_paper_code_bytes,
    total_paper_data_bytes,
)
from repro.metrics.report import render_table
from repro.workloads.synthetic import (
    clip_to_dmin,
    exponential_interarrivals,
    lambda_for_load,
)


@dataclass
class ContextSwitchComparison:
    """Context-switch counts with and without interposing, per load."""

    load: float
    switches_without: int
    switches_with: int

    @property
    def increase(self) -> float:
        if self.switches_without == 0:
            return 0.0
        return (self.switches_with - self.switches_without) / self.switches_without


@dataclass
class OverheadResult:
    """Full Section 6.2 reproduction."""

    monitor_cycles: int
    scheduler_cycles: int
    context_switch_cycles: int
    effective_top_cycles: int          # C'_TH for the experiment's C_TH
    effective_bottom_cycles: int       # C'_BH for the experiment's C_BH
    paper_code_bytes: int
    paper_data_bytes: int
    modelled_monitor_data_bytes: int
    context_switch_comparisons: list[ContextSwitchComparison]

    @property
    def overall_context_switch_increase(self) -> float:
        """Aggregate increase across all measured loads."""
        without = sum(c.switches_without for c in self.context_switch_comparisons)
        with_ = sum(c.switches_with for c in self.context_switch_comparisons)
        if without == 0:
            return 0.0
        return (with_ - without) / without


def run_overhead_load(load_index: int,
                      loads: Sequence[float] = (0.01, 0.05, 0.10),
                      irqs_per_load: int = 2_000,
                      seed: int = 1,
                      system: "PaperSystemConfig | None" = None,
                      ) -> ContextSwitchComparison:
    """One interrupt load's with/without-monitoring comparison.

    The campaign runner's unit of parallel work; the per-load seed is
    ``seed + load_index``, matching the serial loop.
    """
    system = system or PaperSystemConfig()
    clock = system.clock()
    costs = system.costs
    c_bh = clock.us_to_cycles(system.bottom_handler_us)
    load = loads[load_index]
    lam = lambda_for_load(c_bh, load, costs)
    intervals = clip_to_dmin(
        exponential_interarrivals(irqs_per_load, lam, seed=seed + load_index),
        lam,
    )
    baseline = run_irq_scenario(system, NeverInterpose(), intervals)
    monitored = run_irq_scenario(
        system,
        MonitoredInterposing(DeltaMinusMonitor.from_dmin(lam)),
        intervals,
    )
    return ContextSwitchComparison(
        load=load,
        switches_without=baseline.hypervisor.context_switches.total,
        switches_with=monitored.hypervisor.context_switches.total,
    )


def merge_overhead(comparisons: "list[ContextSwitchComparison]",
                   system: "PaperSystemConfig | None" = None,
                   monitor_depth: int = 1) -> OverheadResult:
    """Assemble the static Section 6.2 accounting around the measured
    per-load comparisons."""
    system = system or PaperSystemConfig()
    clock = system.clock()
    costs = system.costs
    c_th = clock.us_to_cycles(system.top_handler_us)
    c_bh = clock.us_to_cycles(system.bottom_handler_us)
    return OverheadResult(
        monitor_cycles=costs.monitor_cycles(),
        scheduler_cycles=costs.scheduler_cycles(),
        context_switch_cycles=costs.context_switch_cycles(),
        effective_top_cycles=costs.effective_top_handler_cycles(c_th),
        effective_bottom_cycles=costs.effective_bottom_handler_cycles(c_bh),
        paper_code_bytes=total_paper_code_bytes(),
        paper_data_bytes=total_paper_data_bytes(),
        modelled_monitor_data_bytes=monitor_data_bytes(monitor_depth),
        context_switch_comparisons=comparisons,
    )


def run_overhead(system: "PaperSystemConfig | None" = None,
                 loads: Sequence[float] = (0.01, 0.05, 0.10),
                 irqs_per_load: int = 2_000,
                 seed: int = 1,
                 monitor_depth: int = 1) -> OverheadResult:
    """Measure the Section 6.2 overheads on the paper system."""
    comparisons = [
        run_overhead_load(index, loads, irqs_per_load, seed, system)
        for index in range(len(loads))
    ]
    return merge_overhead(comparisons, system, monitor_depth)


def render_overhead(result: OverheadResult,
                    system: "PaperSystemConfig | None" = None) -> str:
    """Paper-style text rendering of the Section 6.2 numbers."""
    system = system or PaperSystemConfig()
    clock = system.clock()
    runtime_rows = [
        ["C_Mon (monitoring function)", result.monitor_cycles,
         f"{clock.cycles_to_us(result.monitor_cycles):.2f}",
         "128 instructions"],
        ["C_sched (scheduler manipulation)", result.scheduler_cycles,
         f"{clock.cycles_to_us(result.scheduler_cycles):.2f}",
         "877 instructions"],
        ["C_ctx (context switch)", result.context_switch_cycles,
         f"{clock.cycles_to_us(result.context_switch_cycles):.2f}",
         "~5000 instr + ~5000 cyc writeback"],
        ["C'_TH (Eq. 15)", result.effective_top_cycles,
         f"{clock.cycles_to_us(result.effective_top_cycles):.2f}",
         "C_TH + C_Mon"],
        ["C'_BH (Eq. 13)", result.effective_bottom_cycles,
         f"{clock.cycles_to_us(result.effective_bottom_cycles):.2f}",
         "C_BH + C_sched + 2*C_ctx"],
    ]
    ctx_rows = [
        [f"{100 * comparison.load:.0f}%",
         comparison.switches_without,
         comparison.switches_with,
         f"{100 * comparison.increase:.1f}%"]
        for comparison in result.context_switch_comparisons
    ]
    sections = [
        "Section 6.2 — memory and runtime overhead",
        "",
        render_footprint_table(),
        f"modelled monitor data (l=1, 32-bit timestamps): "
        f"{result.modelled_monitor_data_bytes} bytes (paper: 28 bytes)",
        "",
        render_table(["runtime cost", "cycles", "us @200MHz", "paper basis"],
                     runtime_rows),
        "",
        render_table(["load U_IRQ", "ctx switches (off)", "ctx switches (on)",
                      "increase"],
                     ctx_rows,
                     title="Context-switch increase, d_min-adherent "
                           "arrivals (paper: ~10%)"),
        f"overall increase: "
        f"{100 * result.overall_context_switch_increase:.1f}%",
    ]
    return "\n".join(sections)
