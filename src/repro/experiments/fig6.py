"""Experiment fig6 — IRQ latency histograms (Fig. 6a/6b/6c).

Three scenarios over the same system (Section 6.1):

* **a** — monitoring disabled (unmodified Fig. 4a top handler):
  ~40 % direct IRQs with short latencies, ~60 % delayed IRQs roughly
  uniform up to ``T_TDMA - T_i`` = 8000 µs; average ≈ 2500 µs.
* **b** — monitoring enabled, arbitrary (exponential) arrivals with
  λ = d_min: a large share of previously delayed IRQs becomes
  interposed; average ≈ 1200 µs; worst case still TDMA-bound.
* **c** — monitoring enabled, every interarrival clipped to ≥ d_min:
  no IRQ is delayed; average ≈ 150 µs (≈16× better than (a)); the
  worst case is no longer defined by the TDMA cycle.

For each of the interrupt loads U_IRQ ∈ {1 %, 5 %, 10 %}, the mean
interarrival λ = C'_BH / U_IRQ (Eq. 17); results are cumulative over
all loads, 15000 IRQs total in the paper (5000 per load).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import (
    PaperSystemConfig,
    ScenarioSummary,
    run_irq_scenario,
)
from repro.experiments.scale import PAPER as PAPER_SCALE
from repro.metrics.histogram import LatencyHistogram, fig6_histogram
from repro.metrics.report import render_mode_breakdown
from repro.metrics.stats import summarize
from repro.workloads.synthetic import (
    clip_to_dmin,
    exponential_interarrivals,
    lambda_for_load,
)

SCENARIOS = ("a", "b", "c")

#: Paper-reported reference values for the three scenarios.
PAPER_REFERENCE = {
    "a": {"avg_us": 2500.0, "direct": 0.40, "interposed": 0.00, "delayed": 0.60},
    "b": {"avg_us": 1200.0, "direct": 0.40, "interposed": 0.40, "delayed": 0.20},
    "c": {"avg_us": 150.0, "direct": 0.40, "interposed": 0.60, "delayed": 0.00},
}


@dataclass
class Fig6Config:
    """Parameters of the fig6 experiment."""

    system: PaperSystemConfig = field(default_factory=PaperSystemConfig)
    loads: Sequence[float] = (0.01, 0.05, 0.10)
    #: Paper scale (see :mod:`repro.experiments.scale`): 5000 IRQs per
    #: load x 3 loads = the 15000 IRQs per scenario of Section 6.1.
    irqs_per_load: int = PAPER_SCALE.fig6_irqs_per_load
    seed: int = 1


@dataclass
class Fig6Result:
    """Cumulative result of one Fig. 6 scenario."""

    scenario: str
    per_load: dict[float, ScenarioSummary]
    latencies_us: "array | list[float]"
    avg_latency_us: float
    max_latency_us: float
    mode_counts: dict[str, int]
    histogram: LatencyHistogram

    def mode_fractions(self) -> dict[str, float]:
        total = sum(self.mode_counts.values()) or 1
        return {mode: count / total for mode, count in self.mode_counts.items()}


def run_fig6_load(scenario: str, config: Fig6Config,
                  load_index: int) -> ScenarioSummary:
    """Run one (scenario, interrupt load) cell of the Fig. 6 campaign.

    This is the campaign runner's unit of parallel work: the per-load
    seed is derived deterministically (``config.seed + load_index``,
    exactly as the serial loop always has), so any scheduling of these
    tasks reproduces the serial result bit for bit.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}, got {scenario!r}")
    system = config.system
    clock = system.clock()
    c_bh = clock.us_to_cycles(system.bottom_handler_us)
    load = config.loads[load_index]
    lam = lambda_for_load(c_bh, load, system.costs)
    intervals = exponential_interarrivals(
        config.irqs_per_load, lam, seed=config.seed + load_index
    )
    if scenario == "c":
        intervals = clip_to_dmin(intervals, lam)
    if scenario == "a":
        policy = NeverInterpose()
    else:
        # "For the monitored scenarios we have used λ = d_min."
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(lam))
    return run_irq_scenario(system, policy, intervals).lightweight()


def merge_fig6_loads(scenario: str, config: Fig6Config,
                     summaries: "list[ScenarioSummary]") -> Fig6Result:
    """Combine per-load summaries (in load order) into the cumulative
    Fig. 6 result, as the paper accumulates all loads into one
    histogram."""
    if len(summaries) != len(config.loads):
        raise ValueError(
            f"expected {len(config.loads)} per-load results, got {len(summaries)}"
        )
    per_load: dict[float, ScenarioSummary] = {}
    latencies = array("d")         # columnar merge of the per-load arrays
    mode_counts: dict[str, int] = {}
    for load, result in zip(config.loads, summaries):
        per_load[load] = result
        latencies.extend(result.latencies_us)
        for mode, count in result.mode_counts.items():
            mode_counts[mode] = mode_counts.get(mode, 0) + count
    summary = summarize(latencies)
    histogram = fig6_histogram(latencies,
                               tdma_cycle_us=config.system.tdma_cycle_us)
    return Fig6Result(
        scenario=scenario,
        per_load=per_load,
        latencies_us=latencies,
        avg_latency_us=summary.mean,
        max_latency_us=summary.maximum,
        mode_counts=mode_counts,
        histogram=histogram,
    )


def run_fig6(scenario: str, config: "Fig6Config | None" = None) -> Fig6Result:
    """Run one Fig. 6 scenario cumulatively over all interrupt loads."""
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}, got {scenario!r}")
    config = config or Fig6Config()
    summaries = [run_fig6_load(scenario, config, index)
                 for index in range(len(config.loads))]
    return merge_fig6_loads(scenario, config, summaries)


def run_all_fig6(config: "Fig6Config | None" = None) -> dict[str, Fig6Result]:
    """Run scenarios a, b and c with the same configuration."""
    config = config or Fig6Config()
    return {scenario: run_fig6(scenario, config) for scenario in SCENARIOS}


def render_fig6(result: Fig6Result) -> str:
    """Paper-style text rendering of one scenario's histogram."""
    reference = PAPER_REFERENCE[result.scenario]
    lines = [
        f"Fig. 6{result.scenario} — "
        + {
            "a": "monitoring disabled",
            "b": "monitoring enabled",
            "c": "monitoring enabled, no violations",
        }[result.scenario],
        f"IRQs: {len(result.latencies_us)}   "
        f"avg latency: {result.avg_latency_us:.1f} us "
        f"(paper: ~{reference['avg_us']:.0f} us)   "
        f"max: {result.max_latency_us:.1f} us",
        "modes: " + render_mode_breakdown(result.mode_counts),
        "",
        result.histogram.render(log_scale=True),
    ]
    return "\n".join(lines)
