"""Experiment eq-analysis — analysis-vs-simulation validation.

The paper's correctness claims (Sections 4 and 5.1) are validated by
checking the analytical worst-case bounds against measured simulation
maxima:

1. **Classic latency bound (Eqs. 11/12)** — for a d_min-sporadic IRQ
   stream handled with delayed processing, every measured latency must
   stay below the busy-window bound, which is dominated by the TDMA
   term.
2. **Interposed latency bound (Eq. 16)** — for the same stream with
   monitoring enabled, every measured latency must stay below the
   TDMA-free bound built from C'_BH and C'_TH.
3. **Interference bound (Eq. 14)** — the interposing interference any
   other partition suffered, measured over sliding windows of many
   widths, must stay below ceil(Δt/d_min) * C'_BH.  This is the
   *sufficient temporal independence* property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.event_models import PeriodicEventModel
from repro.analysis.latency import (
    IrqLatencyBound,
    classic_irq_latency,
    interposed_irq_latency,
)
from repro.core.independence import (
    DminInterferenceBound,
    IndependenceReport,
    verify_sufficient_independence,
)
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import (
    PaperSystemConfig,
    ScenarioSummary,
    run_irq_scenario,
)
from repro.metrics.report import render_table
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals


@dataclass
class ValidationResult:
    """Outcome of the analysis-vs-simulation comparison."""

    dmin_us: float
    classic_bound_us: float
    classic_measured_max_us: float
    interposed_bound_us: float
    interposed_measured_max_us: float
    independence_reports: list[IndependenceReport]
    classic_result: ScenarioSummary
    interposed_result: ScenarioSummary
    classic_bound: IrqLatencyBound
    interposed_bound: IrqLatencyBound

    @property
    def classic_holds(self) -> bool:
        return self.classic_measured_max_us <= self.classic_bound_us

    @property
    def interposed_holds(self) -> bool:
        return self.interposed_measured_max_us <= self.interposed_bound_us

    @property
    def independence_holds(self) -> bool:
        return all(report.holds for report in self.independence_reports)

    @property
    def all_hold(self) -> bool:
        return (self.classic_holds and self.interposed_holds
                and self.independence_holds)

    @property
    def analytic_improvement(self) -> float:
        """Worst-case improvement factor promised by the analysis."""
        return self.classic_bound_us / self.interposed_bound_us


DEFAULT_WINDOW_WIDTHS_US: Sequence[float] = (
    100.0, 500.0, 2_000.0, 6_000.0, 14_000.0, 50_000.0
)


def _validation_intervals(system: PaperSystemConfig, dmin_us: float,
                          irq_count: int, seed: int) -> list[int]:
    clock = system.clock()
    dmin = clock.us_to_cycles(dmin_us)
    return clip_to_dmin(
        exponential_interarrivals(irq_count, dmin, seed=seed), dmin
    )


def run_validation_classic(system: "PaperSystemConfig | None" = None,
                           dmin_us: float = 1_444.0,
                           irq_count: int = 3_000,
                           seed: int = 7) -> ScenarioSummary:
    """The delayed-handling leg of the validation (campaign task)."""
    system = system or PaperSystemConfig()
    intervals = _validation_intervals(system, dmin_us, irq_count, seed)
    return run_irq_scenario(system, NeverInterpose(), intervals).lightweight()


def run_validation_monitored(
        system: "PaperSystemConfig | None" = None,
        dmin_us: float = 1_444.0,
        irq_count: int = 3_000,
        seed: int = 7,
        window_widths_us: Sequence[float] = DEFAULT_WINDOW_WIDTHS_US,
) -> "tuple[ScenarioSummary, list[IndependenceReport]]":
    """The monitored leg plus its Eq. 14 ledger audit (campaign task).

    The independence reports are produced here, inside the task,
    because they need the hypervisor's interference ledger, which does
    not cross process boundaries.
    """
    system = system or PaperSystemConfig()
    clock = system.clock()
    costs = system.costs
    dmin = clock.us_to_cycles(dmin_us)
    c_bh = clock.us_to_cycles(system.bottom_handler_us)
    intervals = _validation_intervals(system, dmin_us, irq_count, seed)
    monitored_run = run_irq_scenario(
        system, MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
        intervals,
    )
    eq14 = DminInterferenceBound(
        dmin, costs.effective_bottom_handler_cycles(c_bh)
    )
    widths = [clock.us_to_cycles(width) for width in window_widths_us]
    reports = [
        verify_sufficient_independence(
            monitored_run.hypervisor.ledger, victim,
            eq14.max_interference, widths,
        )
        for victim in (system.other_partition, system.housekeeping)
    ]
    return monitored_run.lightweight(), reports


def merge_validation(classic_run: ScenarioSummary,
                     monitored_run: ScenarioSummary,
                     reports: "list[IndependenceReport]",
                     system: "PaperSystemConfig | None" = None,
                     dmin_us: float = 1_444.0) -> ValidationResult:
    """Combine the two measured legs with the (pure) analytic bounds."""
    system = system or PaperSystemConfig()
    clock = system.clock()
    costs = system.costs
    dmin = clock.us_to_cycles(dmin_us)
    c_th = clock.us_to_cycles(system.top_handler_us)
    c_bh = clock.us_to_cycles(system.bottom_handler_us)
    cycle = clock.us_to_cycles(system.tdma_cycle_us)
    slot = clock.us_to_cycles(system.app_slot_us)

    model = PeriodicEventModel(dmin)   # the d_min-sporadic stream
    classic_bound = classic_irq_latency(model, c_th, c_bh, cycle, slot,
                                        costs=costs)
    interposed_bound = interposed_irq_latency(model, c_th, c_bh, costs=costs)

    return ValidationResult(
        dmin_us=dmin_us,
        classic_bound_us=clock.cycles_to_us(classic_bound.response_time_cycles),
        classic_measured_max_us=classic_run.max_latency_us,
        interposed_bound_us=clock.cycles_to_us(
            interposed_bound.response_time_cycles
        ),
        interposed_measured_max_us=monitored_run.max_latency_us,
        independence_reports=reports,
        classic_result=classic_run,
        interposed_result=monitored_run,
        classic_bound=classic_bound,
        interposed_bound=interposed_bound,
    )


def run_validation(system: "PaperSystemConfig | None" = None,
                   dmin_us: float = 1_444.0,
                   irq_count: int = 3_000,
                   seed: int = 7,
                   window_widths_us: Sequence[float] = DEFAULT_WINDOW_WIDTHS_US,
                   ) -> ValidationResult:
    """Run the validation experiment."""
    classic_run = run_validation_classic(system, dmin_us, irq_count, seed)
    monitored_run, reports = run_validation_monitored(
        system, dmin_us, irq_count, seed, window_widths_us
    )
    return merge_validation(classic_run, monitored_run, reports,
                            system, dmin_us)


def render_validation(result: ValidationResult) -> str:
    rows = [
        ["classic (Eqs. 11/12)", f"{result.classic_bound_us:.1f}",
         f"{result.classic_measured_max_us:.1f}",
         "yes" if result.classic_holds else "NO"],
        ["interposed (Eq. 16)", f"{result.interposed_bound_us:.1f}",
         f"{result.interposed_measured_max_us:.1f}",
         "yes" if result.interposed_holds else "NO"],
    ]
    lines = [
        render_table(
            ["analysis", "bound (us)", "measured max (us)", "holds"],
            rows,
            title=f"Worst-case latency bounds vs simulation "
                  f"(d_min = {result.dmin_us:.0f} us)",
        ),
        f"analytic worst-case improvement: {result.analytic_improvement:.1f}x",
        "",
        "Eq. 14 sufficient temporal independence:",
    ]
    for report in result.independence_reports:
        lines.append(
            f"  victim {report.victim}: holds={report.holds} "
            f"(worst measured/bound ratio {report.worst_ratio():.3f})"
        )
    return "\n".join(lines)
