"""Experiment runners — one per paper table/figure (see DESIGN.md §4).

Run from the command line::

    python -m repro.experiments fig6a
    python -m repro.experiments fig7 --quick
    python -m repro.experiments all
"""

from repro.experiments.ablation import (
    BoostAblationResult,
    DepthAblationResult,
    ThrottleAblationResult,
    render_boost_ablation,
    render_depth_ablation,
    render_throttle_ablation,
    run_boost_ablation,
    run_depth_ablation,
    run_throttle_ablation,
)
from repro.experiments.design import DesignResult, render_design, run_design
from repro.experiments.common import (
    PaperSystemConfig,
    ScenarioResult,
    run_irq_scenario,
)
from repro.experiments.fig6 import (
    Fig6Config,
    Fig6Result,
    PAPER_REFERENCE as FIG6_PAPER_REFERENCE,
    render_fig6,
    run_all_fig6,
    run_fig6,
)
from repro.experiments.fig7 import (
    FIG7_CASES,
    Fig7CaseResult,
    Fig7Config,
    PAPER_REFERENCE as FIG7_PAPER_REFERENCE,
    render_fig7,
    run_fig7,
    run_fig7_case,
)
from repro.experiments.overhead import (
    ContextSwitchComparison,
    OverheadResult,
    render_overhead,
    run_overhead,
)
from repro.experiments.sweep import (
    CycleSweepPoint,
    DminSweepPoint,
    render_cycle_sweep,
    render_dmin_sweep,
    run_cycle_sweep,
    run_dmin_sweep,
)
from repro.experiments.validation import (
    ValidationResult,
    render_validation,
    run_validation,
)

__all__ = [
    "BoostAblationResult",
    "DepthAblationResult",
    "ThrottleAblationResult",
    "render_boost_ablation",
    "render_depth_ablation",
    "render_throttle_ablation",
    "run_boost_ablation",
    "run_depth_ablation",
    "run_throttle_ablation",
    "DesignResult",
    "render_design",
    "run_design",
    "PaperSystemConfig",
    "ScenarioResult",
    "run_irq_scenario",
    "Fig6Config",
    "Fig6Result",
    "FIG6_PAPER_REFERENCE",
    "render_fig6",
    "run_all_fig6",
    "run_fig6",
    "FIG7_CASES",
    "Fig7CaseResult",
    "Fig7Config",
    "FIG7_PAPER_REFERENCE",
    "render_fig7",
    "run_fig7",
    "run_fig7_case",
    "ContextSwitchComparison",
    "OverheadResult",
    "render_overhead",
    "run_overhead",
    "CycleSweepPoint",
    "DminSweepPoint",
    "render_cycle_sweep",
    "render_dmin_sweep",
    "run_cycle_sweep",
    "run_dmin_sweep",
    "ValidationResult",
    "render_validation",
    "run_validation",
]
