"""Experiment design — the integrator workflow the paper enables.

A system integrator adding an interposing IRQ source to a certified
TDMA system must answer: *what is the most aggressive monitoring
condition (smallest d_min) that provably keeps every victim-partition
deadline?*  This experiment closes that loop:

1. analytically compute the minimum admissible d_min for a victim
   task set (:func:`repro.analysis.schedulability.min_admissible_dmin`,
   combining Eq. 8 TDMA service with Eq. 14 interference);
2. simulate the full system at that d_min and confirm zero deadline
   misses under worst-ish-case interposing pressure;
3. simulate at a significantly smaller d_min to show the analysis is
   meaningfully tight (the extra interference visibly erodes the
   victim's slack).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.schedulability import (
    InterposingLoad,
    TaskSpec,
    min_admissible_dmin,
    partition_schedulable,
)
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing
from repro.guestos.kernel import GuestKernel
from repro.guestos.tasks import GuestTask
from repro.hypervisor.config import CostModel, HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.metrics.report import render_table
from repro.sim.clock import Clock
from repro.sim.timers import IntervalSequenceTimer


@dataclass
class DesignResult:
    """Outcome of the d_min design workflow."""

    analytic_min_dmin_us: float
    analytic_schedulable_at_min: bool
    simulated_misses_at_min: int
    simulated_max_response_us: float
    analytic_response_bound_us: float
    victim_task: str
    windows_opened: int

    @property
    def simulation_confirms_analysis(self) -> bool:
        return (self.simulated_misses_at_min == 0
                and self.simulated_max_response_us
                <= self.analytic_response_bound_us)


#: Victim task set used by the experiment (times in µs at 200 MHz).
VICTIM_TASKS_US = (
    ("control", 1, 400, 8_000),
    ("monitoring", 3, 600, 16_000),
    ("logging", 6, 1_000, 32_000),
)


def _task_specs(clock: Clock) -> list[TaskSpec]:
    return [
        TaskSpec(name, priority, clock.us_to_cycles(wcet),
                 clock.us_to_cycles(period))
        for name, priority, wcet, period in VICTIM_TASKS_US
    ]


def _guest_kernel(clock: Clock) -> GuestKernel:
    kernel = GuestKernel("victim-os")
    for name, priority, wcet, period in VICTIM_TASKS_US:
        kernel.add_task(GuestTask(name, priority=priority,
                                  wcet_cycles=clock.us_to_cycles(wcet),
                                  period_cycles=clock.us_to_cycles(period)))
    return kernel


def run_design(irq_count: int = 600, c_bh_us: float = 40.0,
               seed: int = 23) -> DesignResult:
    """Run the analytic-then-simulate d_min design workflow."""
    clock = Clock()
    us = clock.us_to_cycles
    costs = CostModel()
    cycle, slot = us(4_000), us(2_000)
    c_bh = us(c_bh_us)
    tasks = _task_specs(clock)

    dmin = min_admissible_dmin(tasks, 2 * slot, slot, c_bh, costs)
    if dmin is None:
        raise RuntimeError("victim task set unschedulable even without "
                           "interposing; adjust VICTIM_TASKS_US")
    report = partition_schedulable(
        tasks, 2 * slot, slot, [InterposingLoad(dmin, c_bh)], costs
    )
    bound = max(v.response_time for v in report.verdicts
                if v.response_time is not None)
    critical = max(
        (v for v in report.verdicts if v.response_time is not None),
        key=lambda v: v.response_time / v.deadline,
    )

    # Simulate: victim partition with the guest tasks; IRQ source for
    # the other partition arriving exactly at the d_min pace (the
    # worst admitted pattern).
    slots = [SlotConfig("VICTIM", slot), SlotConfig("SRV", slot)]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
    kernel = _guest_kernel(clock)
    hv.add_partition(Partition("VICTIM", guest=kernel,
                               busy_background=False))
    hv.add_partition(Partition("SRV"))
    source = IrqSource(
        name="srv_irq", line=5, subscriber="SRV",
        top_handler_cycles=us(2), bottom_handler_cycles=c_bh,
        policy=MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
    )
    hv.add_irq_source(source)
    timer = IntervalSequenceTimer(hv.engine, hv.intc, 5,
                                  [dmin] * irq_count)
    source.on_top_handler = lambda event: timer.arm_next()
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(irq_count,
                           limit_cycles=clock.s_to_cycles(300))

    max_response = max(
        (kernel.stats(name).max_response
         for name, *_ in VICTIM_TASKS_US),
        default=0,
    )
    return DesignResult(
        analytic_min_dmin_us=clock.cycles_to_us(dmin),
        analytic_schedulable_at_min=report.schedulable,
        simulated_misses_at_min=kernel.total_deadline_misses(),
        simulated_max_response_us=clock.cycles_to_us(max_response),
        analytic_response_bound_us=clock.cycles_to_us(bound),
        victim_task=critical.task.name,
        windows_opened=hv.stats.windows_opened,
    )


def render_design(result: DesignResult) -> str:
    rows = [
        ["minimum admissible d_min", f"{result.analytic_min_dmin_us:.1f} us"],
        ["analysis schedulable at d_min",
         "yes" if result.analytic_schedulable_at_min else "NO"],
        ["worst analytic response bound",
         f"{result.analytic_response_bound_us:.0f} us "
         f"(critical task: {result.victim_task})"],
        ["simulated max response at d_min",
         f"{result.simulated_max_response_us:.0f} us"],
        ["simulated deadline misses", result.simulated_misses_at_min],
        ["interposed windows executed", result.windows_opened],
        ["simulation confirms analysis",
         "yes" if result.simulation_confirms_analysis else "NO"],
    ]
    return render_table(
        ["design quantity", "value"], rows,
        title="design — choosing d_min for a certified victim partition",
    )
