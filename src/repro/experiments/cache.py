"""Content-addressed, on-disk campaign result cache.

``python -m repro.experiments`` re-runs recompute every simulation task
from scratch even when nothing changed.  This module makes campaigns
*incremental*: each :class:`~repro.experiments.runner.CampaignTask` is
fingerprinted by everything its result can depend on, and the runner
replays the stored (picklable) result whenever the fingerprint matches
a previous run.

The fingerprint covers, in one SHA-256 over a canonical JSON payload:

* the task ``kind`` (the dispatch key into ``TASK_FUNCTIONS``);
* the **canonicalized kwargs** — dataclass configs are flattened
  field-by-field with their class identity, floats are encoded via
  ``float.hex()`` so formatting can never alias two values, dict keys
  are sorted.  The experiment *scale* and *seed* enter here: the
  campaign planner bakes both into each task's kwargs, so changing
  either invalidates exactly the tasks that consume them (e.g. the
  ``design`` task takes no seed and survives a ``--seed`` change);
* a **source fingerprint** of the task function's module and every
  ``repro.*`` module it transitively imports (resolved statically from
  the AST, hashed by file content) — editing the engine, a workload
  generator, or an analysis module invalidates exactly the tasks whose
  code paths changed, and nothing else.

Because task results already cross process boundaries through
``pickle`` in parallel campaigns (and the byte-identity tests pin that
round trip), replaying a pickled result is byte-identical to
recomputing it: a warm campaign differs from a cold one only in wall
clock.

Cache entries live under ``<dir>/<key[:2]>/<key>.pkl`` and are written
atomically (temp file + ``os.replace``), so concurrent campaigns can
share a directory; a corrupt or truncated entry is treated as a miss
and rewritten.  Every entry records the compute time of the original
miss, which is how :class:`CacheStats` can report the wall-clock time
a warm run saved.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import importlib.util
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Mapping, Optional

#: Bumped whenever the entry layout or fingerprint payload changes so
#: stale caches from older code read as misses instead of garbage.
CACHE_FORMAT = 1

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache directory the CLI uses when ``--cache-dir`` is absent."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


# --------------------------------------------------------------- kwargs

def canonicalize(value: Any) -> Any:
    """Reduce a task-kwargs value to a canonical JSON-safe form.

    Supported: ``None``, ``bool``, ``int``, ``str``, ``float`` (encoded
    exactly via ``float.hex()``), ``Enum``, ``list``/``tuple``,
    ``dict`` with string keys, and dataclass instances (tagged with
    their qualified class name and flattened field-by-field, so two
    config classes with coincidentally equal fields cannot alias).
    Anything else raises ``TypeError`` — silently hashing an unknown
    object's ``repr`` would risk cache collisions or spurious misses.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}
    if isinstance(value, Enum):
        cls = type(value)
        return {"__enum__": f"{cls.__module__}.{cls.__qualname__}",
                "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot canonicalize dict key {key!r}: only string "
                    "keys are cacheable"
                )
        return {key: canonicalize(value[key]) for key in sorted(value)}
    raise TypeError(
        f"cannot canonicalize {type(value).__qualname__!r} for the result "
        "cache; task kwargs must be primitives, tuples, dicts, enums or "
        "dataclasses thereof"
    )


# --------------------------------------------------------------- source

#: module name -> (content hash, frozenset of package-local imports);
#: per-process memo so a 31-task campaign parses each module once.
_MODULE_INFO_CACHE: "dict[str, Optional[tuple[str, frozenset]]]" = {}


def clear_source_caches() -> None:
    """Drop the per-process module-source memo (tests rewrite files)."""
    _MODULE_INFO_CACHE.clear()


def _module_origin(name: str) -> "str | None":
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or spec.origin is None:
        return None
    if not spec.origin.endswith(".py"):
        return None
    return spec.origin


def _in_package(name: str, root_package: str) -> bool:
    return name == root_package or name.startswith(root_package + ".")


def _module_info(name: str,
                 root_package: str) -> "tuple[str, frozenset] | None":
    """(content hash, package-local imports) of one module, memoized."""
    if name in _MODULE_INFO_CACHE:
        return _MODULE_INFO_CACHE[name]
    origin = _module_origin(name)
    info = None
    if origin is not None:
        try:
            source = Path(origin).read_bytes()
        except OSError:
            source = None
        if source is not None:
            digest = hashlib.sha256(source).hexdigest()
            imports: "set[str]" = set()
            try:
                tree = ast.parse(source)
            except SyntaxError:
                tree = None
            if tree is not None:
                for node in ast.walk(tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            if _in_package(alias.name, root_package):
                                imports.add(alias.name)
                    elif isinstance(node, ast.ImportFrom):
                        if (node.level == 0 and node.module
                                and _in_package(node.module, root_package)):
                            imports.add(node.module)
                            for alias in node.names:
                                sub = f"{node.module}.{alias.name}"
                                if _module_origin(sub) is not None:
                                    imports.add(sub)
            info = (digest, frozenset(imports))
    _MODULE_INFO_CACHE[name] = info
    return info


def source_fingerprint(module_name: str,
                       root_package: str = "repro") -> str:
    """Hash the transitive package-local source closure of a module.

    Imports are resolved *statically* (AST, not ``sys.modules``) so the
    fingerprint is stable regardless of import order, and restricted to
    ``root_package`` — the Python stdlib is part of the interpreter
    version, not of the experiment definition.
    """
    seen: "set[str]" = set()
    stack = [module_name]
    entries: "list[tuple[str, str]]" = []
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        info = _module_info(name, root_package)
        if info is None:
            continue
        digest, imports = info
        entries.append((name, digest))
        stack.extend(imports)
    payload = hashlib.sha256()
    for name, digest in sorted(entries):
        payload.update(name.encode())
        payload.update(b"\0")
        payload.update(digest.encode())
        payload.update(b"\n")
    return payload.hexdigest()


def result_digest(result: Any) -> str:
    """Stable content digest of one task result.

    Results that define ``digest()`` (world snapshots, prefix/warm-up
    wrappers) use it — their digest is a hash over canonical plain
    data, stable across processes.  Anything else is hashed through
    its pickle, which is exactly the representation the cache stores
    and the byte-identity tests pin.
    """
    digest = getattr(result, "digest", None)
    if callable(digest):
        return str(digest())
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def task_fingerprint(task: Any, root_package: str = "repro",
                     parent_digests: "tuple[str, ...]" = ()) -> str:
    """Content-address one campaign task (see the module docstring).

    ``parent_digests`` carries the result digests of the tasks this one
    depends on (``task.needs``), in order — a forked task's fingerprint
    folds in the exact snapshot it forks from, so a cached continuation
    is only replayed when its parent's world is byte-identical too.
    """
    from repro.experiments.runner import TASK_FUNCTIONS

    function = TASK_FUNCTIONS[task.kind]
    payload = {
        "format": CACHE_FORMAT,
        "kind": task.kind,
        "kwargs": canonicalize(dict(task.kwargs)),
        "source": source_fingerprint(function.__module__, root_package),
    }
    if parent_digests:
        payload["parents"] = list(parent_digests)
        feed = getattr(task, "feed", None)
        if feed:
            payload["feed"] = feed
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------- cache

@dataclass
class CacheStats:
    """Cumulative hit/miss/bytes/time accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Misses where an entry *existed* but was unreadable, corrupt, or
    #: written by an incompatible format — i.e. a stored result was
    #: discarded rather than simply absent.
    invalidations: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Recorded compute time of the hits — the wall clock a warm run
    #: did not spend simulating.
    saved_seconds: float = 0.0
    #: Compute time of the misses this handle stored.
    computed_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> "dict[str, Any]":
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "saved_seconds": round(self.saved_seconds, 3),
            "computed_seconds": round(self.computed_seconds, 3),
        }

    def render(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"hit_rate={100 * self.hit_rate:.0f}% "
                f"read={self.bytes_read}B written={self.bytes_written}B "
                f"saved~{self.saved_seconds:.2f}s")


@dataclass(frozen=True)
class CacheEntry:
    """One replayed result plus the metadata stored next to it."""

    key: str
    kind: str
    experiment: str
    elapsed_seconds: float
    result: Any


class ResultCache:
    """Content-addressed pickle store for campaign task results."""

    def __init__(self, directory: "str | os.PathLike[str]"):
        self.directory = Path(directory)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> "CacheEntry | None":
        """Fetch a stored entry; any read/format problem is a miss."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT
                or payload.get("key") != key):
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        elapsed = float(payload.get("elapsed_seconds", 0.0))
        self.stats.saved_seconds += elapsed
        return CacheEntry(
            key=key,
            kind=str(payload.get("kind", "")),
            experiment=str(payload.get("experiment", "")),
            elapsed_seconds=elapsed,
            result=payload.get("result"),
        )

    def store(self, key: str, task: Any, result: Any,
              elapsed_seconds: float) -> None:
        """Atomically persist one computed result under its key."""
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "kind": task.kind,
            "experiment": task.experiment,
            "elapsed_seconds": float(elapsed_seconds),
            "created": time.time(),
            "result": result,
        }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.bytes_written += len(blob)
        self.stats.computed_seconds += float(elapsed_seconds)

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, {self.stats.render()})"
