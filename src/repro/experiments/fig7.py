"""Experiment fig7 — self-learning δ⁻ on an automotive trace (App. A).

An ECU task-activation trace (~11000 activations) drives the IRQ
timer.  The first 10 % of the trace is a learning phase: Algorithm 1
records the observed δ⁻ table (l = 5) while only direct and delayed
handling are active, so the average latency sits at the unmonitored
level (~2200 µs in the paper).  Entering run mode, the learned table is
clamped to a configured bound (Algorithm 2) and interposing starts.

Four bound cases, as in the paper's Fig. 7:

* **a** — the bound does not bind the recorded δ⁻: every foreign-slot
  IRQ is interposed, average drops to ~120 µs;
* **b** — bound admits 25 % of the recorded load → ~300 µs;
* **c** — 12.5 % → ~900 µs;
* **d** — 6.25 % → ~1600 µs.

Bounding the admitted load pushes the excess IRQs back to delayed
handling, so the run-mode averages are strictly ordered a < b < c < d.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from array import array
from dataclasses import dataclass, field
from typing import Optional

from repro.core.policy import LearningPhase, SelfLearningInterposing
from repro.experiments.common import (
    PaperSystemConfig,
    ScenarioResult,
    ScenarioSummary,
    run_irq_scenario,
    run_irq_scenario_from,
)
from repro.metrics.report import render_table
from repro.metrics.stats import running_average, summarize
from repro.sim.snapshot import SnapshotError, WorldSnapshot, settle
from repro.sim.worldstore import default_store
from repro.workloads.automotive import AutomotiveTraceConfig, generate_automotive_trace
from repro.workloads.traces import ActivationTrace

#: The paper's four δ⁻ bound cases: label -> admitted load fraction
#: (None = the bound does not bind the recorded table).
FIG7_CASES: dict[str, Optional[float]] = {
    "a": None,
    "b": 0.25,
    "c": 0.125,
    "d": 0.0625,
}

#: Paper-reported run-mode averages (µs) for the four cases.
PAPER_REFERENCE = {"a": 120.0, "b": 300.0, "c": 900.0, "d": 1600.0}

#: Completed-IRQ margin kept between the shared-prefix stopping point
#: and the learning→run transition: completions trail arrivals (queued
#: delayed events), and :func:`repro.sim.snapshot.settle` may step a
#: few more arrivals while hunting for a quiescent point — the margin
#: keeps the fork strictly inside the learning phase, where the four
#: bound cases are still indistinguishable.
PREFIX_MARGIN = 32


@dataclass
class Fig7Config:
    """Parameters of the fig7 experiment."""

    system: PaperSystemConfig = field(default_factory=PaperSystemConfig)
    trace: AutomotiveTraceConfig = field(default_factory=AutomotiveTraceConfig)
    monitor_depth: int = 5
    learn_fraction: float = 0.10
    #: Sliding window of the running-average curve (events).
    average_window: int = 500


@dataclass
class Fig7CaseResult:
    """One curve of Fig. 7 (fully picklable; campaign-task result)."""

    label: str
    load_fraction: Optional[float]
    scenario: ScenarioSummary
    learn_count: int
    learn_avg_us: float
    run_avg_us: float
    #: Sliding-window average latency per IRQ event (the Fig. 7 y-axis),
    #: columnar (``array('d')``).
    series_us: "array | list[float]"
    learned_table: list[int]
    monitor_table: list[int]


@dataclass(frozen=True)
class Fig7Prefix:
    """The shared learning-phase prefix of the four fig7 bound cases.

    ``snapshot`` is the world captured at a quiescent point strictly
    inside the learning phase (``None`` when no usable fork point was
    found — consumers fall back to straight-line execution).  ``key``
    fingerprints the :class:`Fig7Config` the prefix was simulated
    under, so a case is never forked from a mismatched prefix.
    """

    key: str
    learn_count: int
    snapshot: Optional[WorldSnapshot]

    def digest(self) -> str:
        """Content digest folded into child-task cache fingerprints."""
        if self.snapshot is None:
            return hashlib.sha256(
                f"fig7-prefix:straight-line:{self.key}".encode("utf-8")
            ).hexdigest()
        return self.snapshot.digest()


def _prefix_key(config: Fig7Config) -> str:
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         separators=(",", ":"), default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_fig7_prefix(config: "Fig7Config | None" = None,
                    trace: "ActivationTrace | None" = None) -> Fig7Prefix:
    """Simulate the learning phase once and capture it for forking.

    The four bound cases differ only in the load fraction that is read
    at the learning→run transition, so any quiescent point strictly
    before that transition is case-independent: the learning phase —
    10 % of the trace — is simulated once instead of four times.
    """
    config = config or Fig7Config()
    key = _prefix_key(config)
    if trace is None:
        trace = generate_automotive_trace(config.trace, config.system.clock())
    intervals = trace.distance_array()
    learn_count = max(config.monitor_depth + 1,
                      round(len(intervals) * config.learn_fraction))
    pre_target = learn_count - PREFIX_MARGIN
    if pre_target <= 0:
        return Fig7Prefix(key=key, learn_count=learn_count, snapshot=None)
    policy = SelfLearningInterposing(
        depth=config.monitor_depth,
        learn_count=learn_count,
        load_fraction=None,
    )
    hv, timer = config.system.build(policy, intervals)
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(pre_target)
    try:
        # Interned into the per-process layered store: the four bound
        # cases (and any deeper tree forked off this prefix) share the
        # prefix's storage instead of each holding a full copy.
        snapshot = settle(hv, {timer.name: timer}, store=default_store())
    except SnapshotError:
        return Fig7Prefix(key=key, learn_count=learn_count, snapshot=None)
    if policy.phase is not LearningPhase.LEARN:
        # The margin was not enough (arrivals overtook completions past
        # the transition); the fork would already be case-specific.
        return Fig7Prefix(key=key, learn_count=learn_count, snapshot=None)
    return Fig7Prefix(key=key, learn_count=learn_count, snapshot=snapshot)


def run_fig7_case(label: str, config: "Fig7Config | None" = None,
                  trace: "ActivationTrace | None" = None,
                  prefix: "Fig7Prefix | None" = None) -> Fig7CaseResult:
    """Run one bound case of the Appendix-A experiment.

    This is the campaign runner's unit of parallel work: trace
    generation is deterministic (and memoized), so a worker process
    regenerating it from ``config.trace`` sees the same activations a
    serial run shares across cases.

    With a ``prefix`` (see :func:`run_fig7_prefix`) the case forks the
    shared learning phase and only simulates its own run mode — the
    result is byte-identical to the straight-line run, which the
    determinism tests pin.
    """
    if label not in FIG7_CASES:
        raise ValueError(f"case must be one of {sorted(FIG7_CASES)}, got {label!r}")
    config = config or Fig7Config()
    if prefix is not None and prefix.snapshot is not None:
        if prefix.key != _prefix_key(config):
            raise ValueError(
                "fig7 prefix was simulated under a different configuration"
            )
        fraction = FIG7_CASES[label]

        def install_case(hv, timer, source) -> None:
            source.policy.set_load_fraction(fraction)

        result = run_irq_scenario_from(prefix.snapshot, config.system,
                                       configure=install_case)
        policy = result.hypervisor.irq_source(config.system.irq_name).policy
        return _assemble_case(label, config, result, prefix.learn_count, policy)
    if trace is None:
        trace = generate_automotive_trace(config.trace, config.system.clock())
    intervals = trace.distance_array()
    learn_count = max(config.monitor_depth + 1,
                      round(len(intervals) * config.learn_fraction))
    policy = SelfLearningInterposing(
        depth=config.monitor_depth,
        learn_count=learn_count,
        load_fraction=FIG7_CASES[label],
    )
    result = run_irq_scenario(config.system, policy, intervals)
    return _assemble_case(label, config, result, learn_count, policy)


def _assemble_case(label: str, config: Fig7Config, result: ScenarioResult,
                   learn_count: int,
                   policy: SelfLearningInterposing) -> Fig7CaseResult:
    scenario = result.lightweight()
    latencies = scenario.latencies_us
    learn_latencies = latencies[:learn_count]
    run_latencies = latencies[learn_count:]
    return Fig7CaseResult(
        label=label,
        load_fraction=FIG7_CASES[label],
        scenario=scenario,
        learn_count=learn_count,
        learn_avg_us=summarize(learn_latencies).mean,
        run_avg_us=summarize(run_latencies).mean,
        series_us=array("d", running_average(latencies,
                                             window=config.average_window)),
        learned_table=policy.learned_table,
        monitor_table=policy.monitor.table if policy.monitor else [],
    )


def run_fig7(config: "Fig7Config | None" = None,
             shared_prefix: bool = True) -> dict[str, Fig7CaseResult]:
    """Run all four bound cases over the same generated trace.

    With ``shared_prefix`` (the default) the learning phase is
    simulated once and the four cases fork from its snapshot; pass
    False to force four independent straight-line runs (the two modes
    produce byte-identical results).
    """
    config = config or Fig7Config()
    trace = generate_automotive_trace(config.trace, config.system.clock())
    prefix = run_fig7_prefix(config, trace) if shared_prefix else None
    return {
        label: run_fig7_case(label, config, trace, prefix=prefix)
        for label in FIG7_CASES
    }


def render_fig7(results: dict[str, Fig7CaseResult],
                with_series: bool = True) -> str:
    """Text table of the four curves plus the Fig. 7 series plot."""
    rows = []
    for label, result in sorted(results.items()):
        admitted = ("unbounded" if result.load_fraction is None
                    else f"{100 * result.load_fraction:.3g}%")
        rows.append([
            label,
            admitted,
            f"{result.learn_avg_us:.0f}",
            f"{result.run_avg_us:.0f}",
            f"{PAPER_REFERENCE[label]:.0f}",
            result.scenario.mode_counts.get("interposed", 0),
            result.scenario.mode_counts.get("delayed", 0),
        ])
    parts = [render_table(
        ["case", "admitted load", "learn avg us", "run avg us",
         "paper run avg us", "interposed", "delayed"],
        rows,
        title="Fig. 7 — self-learning δ⁻ monitor on the automotive trace",
    )]
    if with_series:
        from repro.metrics.report import render_series
        for label, result in sorted(results.items()):
            parts.append("")
            parts.append(render_series(
                result.series_us, width=72, height=10,
                label=f"case ({label}) — sliding-average IRQ latency (us) "
                      f"over events; learn/run split at event "
                      f"{result.learn_count}",
            ))
    return "\n".join(parts)
