"""Parallel campaign runner for the paper-reproduction experiments.

Every experiment campaign decomposes into *tasks* that are independent
by construction — each regenerates its own inputs from a
deterministically derived seed (e.g. ``seed + load_index`` for the
per-load Fig. 6 cells) instead of sharing mutable state:

========== =====================================================
campaign   task decomposition
========== =====================================================
fig6a/b/c  one task per interrupt load (3 each)
fig7       one task per bound case a–d (4)
tab62      one task per interrupt load (3)
validation classic leg + monitored leg (2)
ablation   boost / throttle / depth (3)
sweep      one task per cycle-scale (4) + per d_min multiplier (5)
design     single task (1)
========== =====================================================

Because the task functions derive their seeds exactly as the serial
loops do, and the merge functions consume task results in the serial
order, ``run_campaign(..., jobs=N)`` is **byte-identical** to
``jobs=1`` for every N: parallelism only changes wall-clock time.

Workload generation inside the workers is cheap and deterministic
(:mod:`repro.workloads` memoizes interarrival arrays and traces), so
tasks ship only small picklable configs in and
:class:`~repro.experiments.common.ScenarioSummary`-style picklable
results out; live :class:`~repro.hypervisor.hypervisor.Hypervisor`
objects (which hold closures) never cross process boundaries — any
audit that needs one (interference ledgers, context-switch counters)
runs inside the task.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.experiments.ablation import (
    run_boost_ablation,
    run_depth_ablation,
    run_throttle_ablation,
)
from repro.experiments.design import run_design
from repro.experiments.fig6 import Fig6Config, merge_fig6_loads, run_fig6_load
from repro.experiments.fig7 import FIG7_CASES, Fig7Config, run_fig7_case
from repro.experiments.overhead import merge_overhead, run_overhead_load
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import run_cycle_sweep_point, run_dmin_sweep_point
from repro.experiments.validation import (
    merge_validation,
    run_validation_classic,
    run_validation_monitored,
)
from repro.workloads.automotive import AutomotiveTraceConfig

#: Default interrupt loads shared by the fig6 and tab62 campaigns.
DEFAULT_LOADS = (0.01, 0.05, 0.10)


@dataclass(frozen=True)
class CampaignTask:
    """One independent, picklable unit of campaign work."""

    experiment: str                     #: campaign id ("fig6a", "sweep", ...)
    kind: str                           #: dispatch key into TASK_FUNCTIONS
    kwargs: "dict[str, Any]" = field(default_factory=dict)

    def __repr__(self) -> str:          # compact pool-debugging aid
        return f"CampaignTask({self.experiment}:{self.kind})"


#: Task dispatch registry.  Entries must be top-level functions so that
#: worker processes can unpickle the reference regardless of the
#: multiprocessing start method.
TASK_FUNCTIONS: "dict[str, Callable[..., Any]]" = {
    "fig6-load": run_fig6_load,
    "fig7-case": run_fig7_case,
    "overhead-load": run_overhead_load,
    "validation-classic": run_validation_classic,
    "validation-monitored": run_validation_monitored,
    "ablation-boost": run_boost_ablation,
    "ablation-throttle": run_throttle_ablation,
    "ablation-depth": run_depth_ablation,
    "sweep-cycle-point": run_cycle_sweep_point,
    "sweep-dmin-point": run_dmin_sweep_point,
    "design": run_design,
}


def execute_task(task: CampaignTask) -> Any:
    """Run one campaign task (in-process or inside a pool worker)."""
    return TASK_FUNCTIONS[task.kind](**task.kwargs)


def plan_experiment(name: str, scale: ExperimentScale, seed: int,
                    ) -> "tuple[list[CampaignTask], Callable[[list], Any]]":
    """Decompose one experiment into tasks plus a merge function.

    The merge function runs in the parent process and consumes the task
    results *in task order* — the same order the serial loops produce —
    so merged results do not depend on worker scheduling.
    """
    if name.startswith("fig6") and name[-1] in ("a", "b", "c"):
        scenario = name[-1]
        config = Fig6Config(irqs_per_load=scale.fig6_irqs_per_load, seed=seed)
        tasks = [
            CampaignTask(name, "fig6-load",
                         {"scenario": scenario, "config": config,
                          "load_index": index})
            for index in range(len(config.loads))
        ]
        return tasks, lambda results: merge_fig6_loads(scenario, config,
                                                       results)
    if name == "fig7":
        config = Fig7Config(trace=AutomotiveTraceConfig(
            activation_count=scale.fig7_activations, seed=seed,
        ))
        labels = tuple(FIG7_CASES)
        tasks = [
            CampaignTask(name, "fig7-case", {"label": label, "config": config})
            for label in labels
        ]
        return tasks, lambda results: dict(zip(labels, results))
    if name == "tab62":
        tasks = [
            CampaignTask(name, "overhead-load",
                         {"load_index": index, "loads": DEFAULT_LOADS,
                          "irqs_per_load": scale.tab62_irqs_per_load,
                          "seed": seed})
            for index in range(len(DEFAULT_LOADS))
        ]
        return tasks, lambda results: merge_overhead(list(results))
    if name == "validation":
        tasks = [
            CampaignTask(name, "validation-classic",
                         {"irq_count": scale.validation_irqs, "seed": seed}),
            CampaignTask(name, "validation-monitored",
                         {"irq_count": scale.validation_irqs, "seed": seed}),
        ]

        def merge_validation_results(results: list) -> Any:
            classic = results[0]
            monitored, reports = results[1]
            return merge_validation(classic, monitored, reports)

        return tasks, merge_validation_results
    if name == "ablation":
        tasks = [
            CampaignTask(name, "ablation-boost",
                         {"irq_count": scale.ablation_irqs, "seed": seed}),
            CampaignTask(name, "ablation-throttle",
                         {"irq_count": scale.ablation_irqs, "seed": seed}),
            CampaignTask(name, "ablation-depth",
                         {"activation_count": scale.ablation_depth_activations}),
        ]
        return tasks, tuple
    if name == "sweep":
        cycle_scales = (0.5, 1.0, 2.0, 4.0)
        multipliers = (1.0, 2.0, 4.0, 8.0, 16.0)
        tasks = [
            CampaignTask(name, "sweep-cycle-point",
                         {"scale": value, "irq_count": scale.sweep_irqs,
                          "seed": seed})
            for value in cycle_scales
        ] + [
            CampaignTask(name, "sweep-dmin-point",
                         {"multiplier": value, "irq_count": scale.sweep_irqs,
                          "seed": seed})
            for value in multipliers
        ]
        split = len(cycle_scales)
        return tasks, lambda results: (results[:split], results[split:])
    if name == "design":
        tasks = [CampaignTask(name, "design",
                              {"irq_count": scale.design_irqs})]
        return tasks, lambda results: results[0]
    raise ValueError(f"unknown experiment {name!r}")


def plan_campaign(names: Sequence[str], scale: ExperimentScale, seed: int,
                  ) -> "tuple[list[CampaignTask], dict[str, Callable]]":
    """Flatten the selected experiments into one task list."""
    tasks: "list[CampaignTask]" = []
    merges: "dict[str, Callable]" = {}
    for name in names:
        experiment_tasks, merge = plan_experiment(name, scale, seed)
        tasks.extend(experiment_tasks)
        merges[name] = merge
    return tasks, merges


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheapest and inherits the imported modules; fall back to
    # the platform default (spawn) where fork is unavailable.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_campaign(names: Sequence[str], scale: ExperimentScale,
                 seed: int = 1, jobs: "int | None" = None,
                 ) -> "dict[str, Any]":
    """Run the selected experiment campaigns, optionally in parallel.

    ``jobs=1`` executes every task in-process, exactly like the
    original serial loops.  ``jobs=N`` fans the tasks out over an
    ``N``-worker process pool with ``chunksize=1`` (tasks have very
    uneven durations, so greedy scheduling matters).  Either way the
    merge consumes results in the fixed task order, so the returned
    results — and anything rendered from them — are byte-identical.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    tasks, merges = plan_campaign(names, scale, seed)
    if jobs <= 1 or len(tasks) <= 1:
        results = [execute_task(task) for task in tasks]
    else:
        with _pool_context().Pool(min(jobs, len(tasks))) as pool:
            results = pool.map(execute_task, tasks, chunksize=1)
    merged: "dict[str, Any]" = {}
    for name in names:
        own = [result for task, result in zip(tasks, results)
               if task.experiment == name]
        merged[name] = merges[name](own)
    return merged


def write_bench_json(path: "str | os.PathLike[str]", *,
                     scale_name: str, jobs: int,
                     experiment_seconds: "Mapping[str, float]",
                     engine: "Any | None" = None) -> dict:
    """Append one run record to a ``BENCH_experiments.json`` history.

    The file holds ``{"runs": [...]}`` with one record per campaign
    run: per-experiment wall-clock seconds plus (when measured) the
    engine microbenchmark's events/sec.  Appending instead of
    overwriting keeps a regression trail the perf harness can diff.
    """
    record: "dict[str, Any]" = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "scale": scale_name,
        "jobs": jobs,
        "experiment_wall_seconds": {
            name: round(seconds, 3)
            for name, seconds in experiment_seconds.items()
        },
        "total_wall_seconds": round(sum(experiment_seconds.values()), 3),
    }
    if engine is not None:
        record["engine"] = {
            "events_per_second": round(engine.events_per_second, 1),
            "chain_events_per_second": round(
                engine.chain_events_per_second, 1),
            "pool_events_per_second": round(engine.pool_events_per_second, 1),
            "events_executed": engine.events_executed,
            "cancelled_events": engine.cancelled_events,
            "elapsed_seconds": round(engine.elapsed_seconds, 4),
        }
    target = Path(path)
    history: "dict[str, Any]" = {"runs": []}
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
            history = loaded
    history["runs"].append(record)
    target.write_text(json.dumps(history, indent=2) + "\n")
    return record
