"""Parallel campaign runner for the paper-reproduction experiments.

Every experiment campaign decomposes into *tasks* that are independent
by construction — each regenerates its own inputs from a
deterministically derived seed (e.g. ``seed + load_index`` for the
per-load Fig. 6 cells) instead of sharing mutable state:

========== =====================================================
campaign   task decomposition
========== =====================================================
fig6a/b/c  one task per interrupt load (3 each)
fig7       shared learning-phase prefix (1) + one forked task
           per bound case a–d (4)
tab62      one task per interrupt load (3)
validation classic leg + monitored leg (2)
ablation   boost / throttle / depth (3)
sweep      one task per cycle-scale (4) + shared warm world (1)
           + one forked task per d_min multiplier (5)
design     single task (1)
========== =====================================================

Because the task functions derive their seeds exactly as the serial
loops do, and the merge functions consume task results in the serial
order, ``run_campaign(..., jobs=N)`` is **byte-identical** to
``jobs=1`` for every N: parallelism only changes wall-clock time.

Tasks that fork a shared snapshot (fig7 cases, d_min points) declare
the snapshot task in ``needs`` and receive its result through the
``feed`` kwarg.  Two schedules resolve those dependencies:

* ``wave`` executes the list in topological waves (:func:`_task_waves`)
  — every forked task re-pickles its parent snapshot across the pool
  boundary, once per child;
* ``subtree`` (the default) groups each connected ``needs`` chain into
  one per-worker assignment (:func:`plan_subtrees`): the worker
  receives the subtree root once and walks the descendants against the
  shared layered world store, so intermediate worlds are never
  re-pickled.  Parent result digests are still folded into cache
  fingerprints inside the worker, so incremental re-runs stay exact.

Either way dependencies never reach a worker unresolved, and the
byte-identity contract extends across the whole task list.

Workload generation inside the workers is cheap and deterministic
(:mod:`repro.workloads` memoizes interarrival arrays and traces), so
tasks ship only small picklable configs in and
:class:`~repro.experiments.common.ScenarioSummary`-style picklable
results out; live :class:`~repro.hypervisor.hypervisor.Hypervisor`
objects (which hold closures) never cross process boundaries — any
audit that needs one (interference ledgers, context-switch counters)
runs inside the task.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import platform
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

try:
    import fcntl
except ImportError:                         # non-POSIX: no advisory locks
    fcntl = None

from repro.experiments.ablation import (
    run_boost_ablation,
    run_depth_ablation,
    run_throttle_ablation,
)
from repro.experiments.cache import (
    ResultCache,
    result_digest,
    task_fingerprint,
)
from repro.experiments.design import run_design
from repro.experiments.fig6 import Fig6Config, merge_fig6_loads, run_fig6_load
from repro.experiments.fig7 import (
    FIG7_CASES,
    Fig7Config,
    run_fig7_case,
    run_fig7_prefix,
)
from repro.experiments.overhead import merge_overhead, run_overhead_load
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import (
    run_cycle_sweep_point,
    run_dmin_sweep_point,
    run_dmin_warmup,
)
from repro.experiments.validation import (
    merge_validation,
    run_validation_classic,
    run_validation_monitored,
)
from repro.workloads.automotive import AutomotiveTraceConfig

#: Default interrupt loads shared by the fig6 and tab62 campaigns.
DEFAULT_LOADS = (0.01, 0.05, 0.10)


@dataclass(frozen=True)
class CampaignTask:
    """One picklable unit of campaign work.

    Most tasks are independent; a *forked* task additionally names the
    campaign-wide indices of the tasks it ``needs`` finished first (its
    snapshot parents) and the kwarg (``feed``) through which the first
    parent's result is injected before dispatch.  The runner executes
    the task list in dependency waves; within a wave the ordered-merge
    byte-identity contract is unchanged.
    """

    experiment: str                     #: campaign id ("fig6a", "sweep", ...)
    kind: str                           #: dispatch key into TASK_FUNCTIONS
    kwargs: "dict[str, Any]" = field(default_factory=dict)
    #: Indices (into the campaign task list) of prerequisite tasks.
    needs: "tuple[int, ...]" = ()
    #: Kwarg name receiving the first prerequisite's result, if any.
    feed: "str | None" = None

    def __repr__(self) -> str:          # compact pool-debugging aid
        return f"CampaignTask({self.experiment}:{self.kind})"


#: Task dispatch registry.  Entries must be top-level functions so that
#: worker processes can unpickle the reference regardless of the
#: multiprocessing start method.
TASK_FUNCTIONS: "dict[str, Callable[..., Any]]" = {
    "fig6-load": run_fig6_load,
    "fig7-prefix": run_fig7_prefix,
    "fig7-case": run_fig7_case,
    "sweep-dmin-warmup": run_dmin_warmup,
    "overhead-load": run_overhead_load,
    "validation-classic": run_validation_classic,
    "validation-monitored": run_validation_monitored,
    "ablation-boost": run_boost_ablation,
    "ablation-throttle": run_throttle_ablation,
    "ablation-depth": run_depth_ablation,
    "sweep-cycle-point": run_cycle_sweep_point,
    "sweep-dmin-point": run_dmin_sweep_point,
    "design": run_design,
}


def execute_task(task: CampaignTask) -> Any:
    """Run one campaign task (in-process or inside a pool worker)."""
    return TASK_FUNCTIONS[task.kind](**task.kwargs)


def execute_task_timed(task: CampaignTask) -> "tuple[Any, float]":
    """Run one task and report its compute time (for cache entries)."""
    started = time.perf_counter()
    result = execute_task(task)
    return result, time.perf_counter() - started


@dataclass
class TaskTelemetry:
    """Execution record of one campaign task (for ``--metrics-json``)."""

    experiment: str
    kind: str
    index: int                      #: position in the campaign task list
    cached: bool                    #: replayed from the result cache
    wall_seconds: float             #: compute time (0.0 for cache hits)
    queue_wait_seconds: float       #: submission -> worker pickup delay
    started_offset_seconds: float   #: pickup time relative to campaign start
    worker_pid: int


@dataclass
class CampaignTelemetry:
    """Aggregated runner telemetry for one ``run_campaign`` call.

    Filled in-place when passed to :func:`run_campaign`; purely
    observational — the instrumented execution path preserves the
    byte-identity guarantee (ordered ``imap`` over the same task list,
    merges still consume results in task order).
    """

    jobs: int = 1
    wall_seconds: float = 0.0
    tasks: "list[TaskTelemetry]" = field(default_factory=list)
    #: monotonic instant of the first run_campaign call sharing this
    #: object; all started_offset_seconds are measured against it, so
    #: per-worker task timelines stay monotone across a multi-campaign
    #: CLI run (one trace track per worker pid).
    epoch: "float | None" = None

    @property
    def busy_seconds(self) -> float:
        """Summed compute time of executed (non-cached) tasks."""
        return sum(task.wall_seconds for task in self.tasks
                   if not task.cached)

    @property
    def worker_utilization(self) -> float:
        """``busy / (wall * jobs)`` — 1.0 means no worker ever idled."""
        if self.wall_seconds <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.wall_seconds * self.jobs))

    def as_dict(self) -> "dict[str, Any]":
        computed = [task for task in self.tasks if not task.cached]
        waits = [task.queue_wait_seconds for task in computed]
        return {
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "worker_utilization": round(self.worker_utilization, 4),
            "tasks_computed": len(computed),
            "tasks_cached": len(self.tasks) - len(computed),
            "max_task_seconds": round(
                max((task.wall_seconds for task in computed), default=0.0), 4
            ),
            "mean_queue_wait_seconds": round(
                sum(waits) / len(waits), 4
            ) if waits else 0.0,
        }


def _execute_task_profiled(item: "tuple[CampaignTask, float]",
                           ) -> "tuple[Any, float, float, int]":
    """Pool target for instrumented runs: result + timing + worker pid.

    ``time.monotonic`` is a system-wide clock on the supported
    platforms, so offsets against the parent's campaign epoch are
    meaningful inside fork/spawn workers.
    """
    task, epoch = item
    pickup_offset = time.monotonic() - epoch
    started = time.perf_counter()
    result = execute_task(task)
    elapsed = time.perf_counter() - started
    return result, pickup_offset, elapsed, os.getpid()


def plan_experiment(name: str, scale: ExperimentScale, seed: int,
                    shared_prefix: bool = True,
                    ) -> "tuple[list[CampaignTask], Callable[[list], Any]]":
    """Decompose one experiment into tasks plus a merge function.

    The merge function runs in the parent process and consumes the task
    results *in task order* — the same order the serial loops produce —
    so merged results do not depend on worker scheduling.

    With ``shared_prefix`` (the default) the fig7 and sweep campaigns
    gain a first-wave snapshot task (the shared learning phase / warm
    world) that the per-case and per-point tasks fork from via
    ``needs``/``feed``; results stay byte-identical either way.
    """
    if name.startswith("fig6") and name[-1] in ("a", "b", "c"):
        scenario = name[-1]
        config = Fig6Config(irqs_per_load=scale.fig6_irqs_per_load, seed=seed)
        tasks = [
            CampaignTask(name, "fig6-load",
                         {"scenario": scenario, "config": config,
                          "load_index": index})
            for index in range(len(config.loads))
        ]
        return tasks, lambda results: merge_fig6_loads(scenario, config,
                                                       results)
    if name == "fig7":
        config = Fig7Config(trace=AutomotiveTraceConfig(
            activation_count=scale.fig7_activations, seed=seed,
        ))
        labels = tuple(FIG7_CASES)
        if shared_prefix:
            tasks = [CampaignTask(name, "fig7-prefix", {"config": config})]
            tasks += [
                CampaignTask(name, "fig7-case",
                             {"label": label, "config": config},
                             needs=(0,), feed="prefix")
                for label in labels
            ]
            # results[0] is the prefix snapshot, not a case.
            return tasks, lambda results: dict(zip(labels, results[1:]))
        tasks = [
            CampaignTask(name, "fig7-case", {"label": label, "config": config})
            for label in labels
        ]
        return tasks, lambda results: dict(zip(labels, results))
    if name == "tab62":
        tasks = [
            CampaignTask(name, "overhead-load",
                         {"load_index": index, "loads": DEFAULT_LOADS,
                          "irqs_per_load": scale.tab62_irqs_per_load,
                          "seed": seed})
            for index in range(len(DEFAULT_LOADS))
        ]
        return tasks, lambda results: merge_overhead(list(results))
    if name == "validation":
        tasks = [
            CampaignTask(name, "validation-classic",
                         {"irq_count": scale.validation_irqs, "seed": seed}),
            CampaignTask(name, "validation-monitored",
                         {"irq_count": scale.validation_irqs, "seed": seed}),
        ]

        def merge_validation_results(results: list) -> Any:
            classic = results[0]
            monitored, reports = results[1]
            return merge_validation(classic, monitored, reports)

        return tasks, merge_validation_results
    if name == "ablation":
        tasks = [
            CampaignTask(name, "ablation-boost",
                         {"irq_count": scale.ablation_irqs, "seed": seed}),
            CampaignTask(name, "ablation-throttle",
                         {"irq_count": scale.ablation_irqs, "seed": seed}),
            CampaignTask(name, "ablation-depth",
                         {"activation_count": scale.ablation_depth_activations}),
        ]
        return tasks, tuple
    if name == "sweep":
        cycle_scales = (0.5, 1.0, 2.0, 4.0)
        multipliers = (1.0, 2.0, 4.0, 8.0, 16.0)
        cycle_tasks = [
            CampaignTask(name, "sweep-cycle-point",
                         {"scale": value, "irq_count": scale.sweep_irqs,
                          "seed": seed})
            for value in cycle_scales
        ]
        split = len(cycle_scales)
        if shared_prefix:
            warmup = CampaignTask(name, "sweep-dmin-warmup",
                                  {"irq_count": scale.sweep_irqs,
                                   "seed": seed})
            dmin_tasks = [
                CampaignTask(name, "sweep-dmin-point",
                             {"multiplier": value,
                              "irq_count": scale.sweep_irqs, "seed": seed},
                             needs=(split,), feed="warmup")
                for value in multipliers
            ]
            tasks = cycle_tasks + [warmup] + dmin_tasks
            # results[split] is the warm-up snapshot, not a point.
            return tasks, lambda results: (results[:split],
                                           results[split + 1:])
        tasks = cycle_tasks + [
            CampaignTask(name, "sweep-dmin-point",
                         {"multiplier": value, "irq_count": scale.sweep_irqs,
                          "seed": seed})
            for value in multipliers
        ]
        return tasks, lambda results: (results[:split], results[split:])
    if name == "design":
        tasks = [CampaignTask(name, "design",
                              {"irq_count": scale.design_irqs})]
        return tasks, lambda results: results[0]
    raise ValueError(f"unknown experiment {name!r}")


def plan_campaign(names: Sequence[str], scale: ExperimentScale, seed: int,
                  shared_prefix: bool = True,
                  ) -> "tuple[list[CampaignTask], dict[str, Callable]]":
    """Flatten the selected experiments into one task list.

    Per-experiment ``needs`` indices are local to that experiment's
    task list; flattening rebases them onto campaign-wide positions.
    """
    tasks: "list[CampaignTask]" = []
    merges: "dict[str, Callable]" = {}
    for name in names:
        experiment_tasks, merge = plan_experiment(name, scale, seed,
                                                  shared_prefix)
        base = len(tasks)
        for task in experiment_tasks:
            if task.needs:
                task = dataclasses.replace(
                    task, needs=tuple(base + need for need in task.needs)
                )
            tasks.append(task)
        merges[name] = merge
    return tasks, merges


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheapest and inherits the imported modules; fall back to
    # the platform default (spawn) where fork is unavailable.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _task_waves(tasks: "list[CampaignTask]") -> "list[list[int]]":
    """Group task indices into topological waves.

    Wave k holds every task whose prerequisites all completed in waves
    < k; tasks without ``needs`` land in wave 0.  Within a wave the
    original task-list order is preserved, which keeps results — and
    the merges that consume them — independent of worker scheduling.
    """
    remaining = set(range(len(tasks)))
    done: "set[int]" = set()
    waves: "list[list[int]]" = []
    while remaining:
        wave = [index for index in sorted(remaining)
                if all(need in done for need in tasks[index].needs)]
        if not wave:
            raise ValueError(
                "campaign task dependencies are cyclic or point outside "
                "the task list"
            )
        waves.append(wave)
        done.update(wave)
        remaining.difference_update(wave)
    return waves


def _materialize(task: CampaignTask, results: "list") -> CampaignTask:
    """Inject a task's parent result into its kwargs before dispatch.

    The returned task is what actually executes (and, for parallel
    waves, what crosses the process boundary) — snapshots are plain
    picklable data, so a forked continuation restores the parent world
    inside the worker.  Cache fingerprints keep using the *original*
    task plus the parent digests, never the injected kwargs.
    """
    if not task.needs or task.feed is None:
        return task
    kwargs = dict(task.kwargs)
    kwargs[task.feed] = results[task.needs[0]]
    return CampaignTask(task.experiment, task.kind, kwargs)


def _run_tasks(tasks: "list[CampaignTask]", jobs: int) -> "list":
    """Execute tasks in dependency waves, in-process or over a pool."""
    results: "list[Any]" = [None] * len(tasks)
    for wave in _task_waves(tasks):
        wave_tasks = [_materialize(tasks[index], results) for index in wave]
        if jobs <= 1 or len(wave_tasks) <= 1:
            wave_results = [execute_task(task) for task in wave_tasks]
        else:
            with _pool_context().Pool(min(jobs, len(wave_tasks))) as pool:
                wave_results = pool.map(execute_task, wave_tasks, chunksize=1)
        for index, result in zip(wave, wave_results):
            results[index] = result
    return results


def _record_task(telemetry: "CampaignTelemetry | None",
                 progress: "Callable[[int, int, CampaignTask], None] | None",
                 task: CampaignTask, index: int, done: int, total: int, *,
                 cached: bool, wall: float, wait: float, offset: float,
                 pid: int) -> None:
    if telemetry is not None:
        telemetry.tasks.append(TaskTelemetry(
            experiment=task.experiment, kind=task.kind, index=index,
            cached=cached, wall_seconds=wall, queue_wait_seconds=wait,
            started_offset_seconds=offset, worker_pid=pid,
        ))
    if progress is not None:
        progress(done, total, task)


def _run_tasks_instrumented(
    tasks: "list[CampaignTask]", jobs: int,
    telemetry: "CampaignTelemetry | None",
    progress: "Callable[[int, int, CampaignTask], None] | None",
    epoch: "float | None" = None,
) -> "list":
    """Like :func:`_run_tasks`, recording per-task telemetry.

    Uses ``pool.imap`` (ordered) so results arrive — and merges later
    consume them — in exactly the task-list order of the plain path;
    only timing observation differs.  Queue waits are measured against
    this call's start; started offsets against ``epoch`` (the shared
    campaign epoch), so worker timelines stay monotone when several
    campaigns feed one telemetry object.
    """
    call_started = time.monotonic()
    base = 0.0 if epoch is None else call_started - epoch
    results: "list[Any]" = [None] * len(tasks)
    total = len(tasks)
    done = 0
    for wave in _task_waves(tasks):
        items = [(_materialize(tasks[index], results), call_started)
                 for index in wave]

        def consume(profiled_iter: "Any") -> None:
            nonlocal done
            for position, (result, offset, elapsed, pid) in enumerate(
                    profiled_iter):
                index = wave[position]
                results[index] = result
                done += 1
                _record_task(telemetry, progress, tasks[index], index,
                             done, total, cached=False, wall=elapsed,
                             wait=offset, offset=base + offset, pid=pid)

        if jobs <= 1 or len(items) <= 1:
            consume(map(_execute_task_profiled, items))
        else:
            with _pool_context().Pool(min(jobs, len(items))) as pool:
                consume(pool.imap(_execute_task_profiled, items, chunksize=1))
    return results


def _run_tasks_cached(
    tasks: "list[CampaignTask]", jobs: int, cache: ResultCache,
    telemetry: "CampaignTelemetry | None" = None,
    progress: "Callable[[int, int, CampaignTask], None] | None" = None,
    epoch: "float | None" = None,
) -> "list":
    """Replay cached task results; compute and store only the misses.

    Fingerprints and stored pickles fully determine each result (see
    :mod:`repro.experiments.cache`), so a partial or fully warm run is
    byte-identical to a cold one; when every task hits, no worker pool
    is spawned at all.
    """
    call_started = time.monotonic()
    base = 0.0 if epoch is None else call_started - epoch
    total = len(tasks)
    done = 0
    results: "list[Any]" = [None] * len(tasks)
    for wave in _task_waves(tasks):
        # Keys are computed per wave so a forked task's fingerprint can
        # fold in the digests of its parents' (just-resolved) results.
        keys: "dict[int, str]" = {}
        miss_indices: "list[int]" = []
        for index in wave:
            task = tasks[index]
            parents = tuple(result_digest(results[need])
                            for need in task.needs)
            keys[index] = task_fingerprint(task, parent_digests=parents)
            entry = cache.load(keys[index])
            if entry is not None:
                results[index] = entry.result
                done += 1
                _record_task(telemetry, progress, tasks[index], index, done,
                             total, cached=True, wall=0.0, wait=0.0,
                             offset=base + time.monotonic() - call_started,
                             pid=os.getpid())
            else:
                miss_indices.append(index)
        if not miss_indices:
            continue
        miss_tasks = [_materialize(tasks[index], results)
                      for index in miss_indices]
        instrumented = telemetry is not None or progress is not None
        if instrumented:
            items = [(task, call_started) for task in miss_tasks]

            def consume(profiled_iter: "Any") -> "list[tuple[Any, float]]":
                nonlocal done
                timed = []
                for position, (result, offset, elapsed, pid) in enumerate(
                        profiled_iter):
                    index = miss_indices[position]
                    timed.append((result, elapsed))
                    done += 1
                    _record_task(telemetry, progress, tasks[index], index,
                                 done, total, cached=False, wall=elapsed,
                                 wait=offset, offset=base + offset, pid=pid)
                return timed

            if jobs <= 1 or len(miss_tasks) <= 1:
                timed = consume(map(_execute_task_profiled, items))
            else:
                with _pool_context().Pool(min(jobs, len(miss_tasks))) as pool:
                    timed = consume(
                        pool.imap(_execute_task_profiled, items, chunksize=1)
                    )
        elif jobs <= 1 or len(miss_tasks) <= 1:
            timed = [execute_task_timed(task) for task in miss_tasks]
        else:
            with _pool_context().Pool(min(jobs, len(miss_tasks))) as pool:
                timed = pool.map(execute_task_timed, miss_tasks, chunksize=1)
        for index, (result, elapsed) in zip(miss_indices, timed):
            cache.store(keys[index], tasks[index], result, elapsed)
            results[index] = result
    return results


#: Valid ``run_campaign(schedule=...)`` values.
SCHEDULES = ("subtree", "wave")


def plan_subtrees(tasks: "list[CampaignTask]",
                  include: "Sequence[int] | None" = None,
                  ) -> "list[list[int]]":
    """Group task indices into dependency-connected subtrees.

    Every ``needs`` edge joins its two endpoints into the same group;
    independent tasks become singleton groups.  Each group lists its
    indices in ascending task-list order — ``needs`` always point to
    earlier indices, so that order is a valid execution order — and
    the groups themselves are ordered by their first task, keeping the
    scatter (and the merges that consume it) deterministic.

    ``include`` restricts planning to a subset of indices (the cache
    misses of a warm run); edges to excluded tasks are ignored — their
    results are already resolved and get injected into the subtree.
    """
    members = sorted(range(len(tasks)) if include is None else include)
    member_set = set(members)
    parent = {index: index for index in members}

    def find(index: int) -> int:
        root = index
        while parent[root] != root:
            root = parent[root]
        while parent[index] != root:
            parent[index], index = root, parent[index]
        return root

    for index in members:
        for need in tasks[index].needs:
            if not 0 <= need < index:
                raise ValueError(
                    f"subtree scheduling requires dependencies that point "
                    f"to earlier tasks; task {index} needs {need}")
            if need in member_set:
                parent[find(need)] = find(index)
    groups: "dict[int, list[int]]" = {}
    for index in members:
        groups.setdefault(find(index), []).append(index)
    return sorted(groups.values(), key=lambda group: group[0])


def _execute_subtree(item: "tuple") -> "tuple[list, list, Any]":
    """Pool target running one whole subtree inside a single worker.

    The subtree root's injected parents crossed the process boundary
    exactly once, in ``item``; every descendant then forks from the
    *live* result of its parent task — for snapshot chains that means
    `fork_snapshot`/`fork_warm_variant` against the worker's shared
    layered store, never a re-pickle of an intermediate world.

    With a cache directory the worker replays hits and stores misses
    itself (`ResultCache` writes are atomic and concurrent-safe), with
    parent digests folded into each fingerprint from the *local*
    results — snapshot-bearing results digest over canonical plain
    data, so the fingerprints match the wave path's exactly.  Keys the
    parent already probed (and missed) arrive precomputed in
    ``known_keys`` so the miss is not double-counted.
    """
    (indices, subtree_tasks, injected, injected_digests, known_keys,
     epoch, cache_dir) = item
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: "dict[int, Any]" = dict(injected)
    digests: "dict[int, str]" = dict(injected_digests)
    meta: "list[tuple[bool, float, float, int]]" = []
    pid = os.getpid()

    def need_digest(need: int) -> str:
        if need not in digests:
            digests[need] = result_digest(results[need])
        return digests[need]

    for position, index in enumerate(indices):
        task = subtree_tasks[position]
        pickup = time.monotonic() - epoch
        key = None
        if cache is not None:
            key = known_keys.get(index)
            if key is None:
                parents = tuple(need_digest(need) for need in task.needs)
                key = task_fingerprint(task, parent_digests=parents)
                entry = cache.load(key)
                if entry is not None:
                    results[index] = entry.result
                    meta.append((True, pickup, 0.0, pid))
                    continue
        run_task = task
        if task.needs and task.feed is not None:
            kwargs = dict(task.kwargs)
            kwargs[task.feed] = results[task.needs[0]]
            run_task = CampaignTask(task.experiment, task.kind, kwargs)
        started = time.perf_counter()
        result = execute_task(run_task)
        elapsed = time.perf_counter() - started
        if cache is not None:
            cache.store(key, task, result, elapsed)
        results[index] = result
        meta.append((False, pickup, elapsed, pid))
    return ([results[index] for index in indices], meta,
            cache.stats if cache is not None else None)


def _merge_cache_stats(into: "Any", delta: "Any") -> None:
    """Fold a worker cache handle's counters into the parent's."""
    for name in ("hits", "misses", "stores", "invalidations", "bytes_read",
                 "bytes_written", "saved_seconds", "computed_seconds"):
        setattr(into, name, getattr(into, name) + getattr(delta, name))


def _run_tasks_subtree(
    tasks: "list[CampaignTask]", jobs: int,
    telemetry: "CampaignTelemetry | None" = None,
    progress: "Callable[[int, int, CampaignTask], None] | None" = None,
    epoch: "float | None" = None,
    cache: "ResultCache | None" = None,
) -> "list":
    """Execute tasks as per-worker subtree assignments.

    With a cache, the parent first replays every hit it can resolve in
    dependency order (a fully warm run therefore spawns no pool at
    all, exactly like the wave path); the remaining misses are grouped
    into subtrees whose already-resolved parents are injected into the
    work item.  Each subtree then runs start-to-finish inside one
    worker, and results scatter back to their campaign indices — so
    merges consume them in the same fixed order as every other path.
    """
    call_started = time.monotonic()
    base = 0.0 if epoch is None else call_started - epoch
    total = len(tasks)
    done = 0
    results: "list[Any]" = [None] * len(tasks)
    resolved_digests: "dict[int, str]" = {}
    known_keys: "dict[int, str]" = {}
    pending = set(range(len(tasks)))
    if cache is not None:
        for index, task in enumerate(tasks):
            if any(need in pending for need in task.needs):
                continue        # an ancestor missed; must execute
            parents = tuple(resolved_digests[need] for need in task.needs)
            key = task_fingerprint(task, parent_digests=parents)
            entry = cache.load(key)
            if entry is None:
                known_keys[index] = key
                continue
            results[index] = entry.result
            resolved_digests[index] = result_digest(entry.result)
            pending.discard(index)
            done += 1
            _record_task(telemetry, progress, task, index, done, total,
                         cached=True, wall=0.0, wait=0.0,
                         offset=base + time.monotonic() - call_started,
                         pid=os.getpid())
    if not pending:
        return results
    cache_dir = str(cache.directory) if cache is not None else None
    items = []
    for indices in plan_subtrees(tasks, include=pending):
        member_set = set(indices)
        injected: "dict[int, Any]" = {}
        injected_digests: "dict[int, str]" = {}
        for index in indices:
            for need in tasks[index].needs:
                if need not in member_set:
                    injected[need] = results[need]
                    injected_digests[need] = resolved_digests[need]
        items.append((indices, [tasks[index] for index in indices],
                      injected, injected_digests,
                      {index: known_keys[index] for index in indices
                       if index in known_keys},
                      call_started, cache_dir))

    def consume(outcome_iter: "Any") -> None:
        nonlocal done
        for item, (sub_results, meta, stats_delta) in zip(items,
                                                          outcome_iter):
            indices = item[0]
            for position, index in enumerate(indices):
                results[index] = sub_results[position]
                cached, pickup, elapsed, pid = meta[position]
                done += 1
                _record_task(telemetry, progress, tasks[index], index,
                             done, total, cached=cached, wall=elapsed,
                             wait=pickup, offset=base + pickup, pid=pid)
            if cache is not None and stats_delta is not None:
                _merge_cache_stats(cache.stats, stats_delta)

    if jobs <= 1 or len(items) <= 1:
        consume(map(_execute_subtree, items))
    else:
        with _pool_context().Pool(min(jobs, len(items))) as pool:
            consume(pool.imap(_execute_subtree, items, chunksize=1))
    return results


def run_campaign(names: Sequence[str], scale: ExperimentScale,
                 seed: int = 1, jobs: "int | None" = None,
                 cache: "ResultCache | None" = None,
                 telemetry: "CampaignTelemetry | None" = None,
                 progress: "Callable[[int, int, CampaignTask], None] | None"
                 = None,
                 shared_prefix: bool = True,
                 store: "Any | None" = None,
                 schedule: str = "subtree",
                 ) -> "dict[str, Any]":
    """Run the selected experiment campaigns, optionally in parallel.

    ``jobs=1`` executes every task in-process, exactly like the
    original serial loops.  ``jobs=N`` fans the tasks out over an
    ``N``-worker process pool with ``chunksize=1`` (tasks have very
    uneven durations, so greedy scheduling matters).  Either way the
    merge consumes results in the fixed task order, so the returned
    results — and anything rendered from them — are byte-identical.

    With a :class:`~repro.experiments.cache.ResultCache`, tasks whose
    content fingerprint matches a stored entry replay the pickled
    result instead of simulating; only misses run (and are stored).
    Results remain byte-identical to an uncached run.

    ``telemetry`` (a :class:`CampaignTelemetry`, filled in-place) and
    ``progress`` (called as ``progress(done, total, task)`` after each
    task completes, in the parent process) select an instrumented
    execution path that observes per-task timing without changing the
    ordered-results contract.

    ``shared_prefix`` plans the fig7 and sweep campaigns with a
    first-wave snapshot task their per-case/per-point tasks fork from
    (see :mod:`repro.sim.snapshot`); disabling it re-runs every task's
    prefix straight-line.  Both settings merge to byte-identical
    results.

    ``schedule`` picks how dependencies are resolved: ``"subtree"``
    (the default) assigns each connected ``needs`` chain to one worker
    so parent snapshots cross the pool boundary once and descendants
    fork from live results against the shared world store;
    ``"wave"`` is the topological-wave path that re-ships the parent
    to every child.  Results are byte-identical across schedules.

    ``store`` is any object exposing ``write_task(task, result,
    index)`` — in practice a
    :class:`repro.store.capture.CampaignStoreWriter` — called once per
    task in task order, in the parent process, after every task has
    resolved and before the merges run.  The runner never imports the
    store package; capture is observational and results pass through
    untouched, so merged results stay byte-identical with or without
    it.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    started = time.monotonic()
    tasks, merges = plan_campaign(names, scale, seed, shared_prefix)
    epoch: "float | None" = None
    if telemetry is not None:
        telemetry.jobs = jobs
        if telemetry.epoch is None:
            telemetry.epoch = started
        epoch = telemetry.epoch
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r} "
                         f"(valid values: {', '.join(SCHEDULES)})")
    if schedule == "subtree":
        results = _run_tasks_subtree(tasks, jobs, telemetry, progress,
                                     epoch, cache)
    elif cache is None:
        if telemetry is not None or progress is not None:
            results = _run_tasks_instrumented(tasks, jobs, telemetry,
                                              progress, epoch)
        else:
            results = _run_tasks(tasks, jobs)
    else:
        results = _run_tasks_cached(tasks, jobs, cache, telemetry, progress,
                                    epoch)
    if store is not None:
        for index, (task, result) in enumerate(zip(tasks, results)):
            store.write_task(task, result, index)
    merged: "dict[str, Any]" = {}
    for name in names:
        own = [result for task, result in zip(tasks, results)
               if task.experiment == name]
        merged[name] = merges[name](own)
    if telemetry is not None:
        telemetry.wall_seconds += time.monotonic() - started
    return merged


def write_bench_json(path: "str | os.PathLike[str]", *,
                     scale_name: str, jobs: int,
                     experiment_seconds: "Mapping[str, float]",
                     engine: "Any | None" = None,
                     engine_ab: "Any | None" = None,
                     engine_idle_ab: "Any | None" = None,
                     engine_fork_ab: "Any | None" = None,
                     engine_subtree_ab: "Any | None" = None,
                     analysis: "Any | None" = None,
                     cache: "Any | None" = None,
                     telemetry: "CampaignTelemetry | None" = None,
                     store_ab: "Any | None" = None) -> dict:
    """Append one run record to a ``BENCH_experiments.json`` history.

    The file holds ``{"runs": [...]}`` with one record per campaign
    run: a ``host`` block (python version, cpu count, platform — so
    cross-machine history stays interpretable), per-experiment
    wall-clock seconds plus (when measured) the
    engine microbenchmark's events/sec (``engine``, annotated with the
    queue backend it ran on), the interleaved queue-backend race
    (``engine_ab``: a
    :class:`~repro.sim.benchmark.BackendABResult` — winner,
    improvement over the frozen legacy loop, per-contender events/s
    overall and on the dispatch-dominated storm phase, plus the array
    backend's storm speedup over bucket),
    the idle-skip race on an idle-dominated scenario
    (``engine_idle_ab``: an
    :class:`~repro.sim.benchmark.IdleABResult` — skip vs tick events/s,
    speedup, spans/events/cycles elided),
    the fork-tree race on a deep fig7-style scenario tree
    (``engine_fork_ab``: a
    :class:`~repro.sim.benchmark.ForkABResult` — layered vs full-copy
    forks/s, speedup, retained bytes per leg and their ratio),
    the scheduling race on a ~1k-branch tree (``engine_subtree_ab``: a
    :class:`~repro.sim.benchmark.SubtreeABResult` — wave-deep
    re-pickling vs subtree walking against a spill-budgeted store,
    end-to-end speedup, per-leg peak retained bytes and the
    unlimited-vs-budgeted memory ratio),
    the run-artifact store's write-overhead race (``store_ab``: a
    :class:`~repro.store.benchmark.StoreABResult` — campaign wall time
    with vs without per-task artifact capture, plus the capture
    volume),
    the analysis memoization A/B (``analysis``: an
    :class:`~repro.analysis.benchmark.AnalysisBenchmarkResult`) and
    the campaign's cache statistics (``cache``: a
    :class:`~repro.experiments.cache.CacheStats` or a plain mapping) —
    consecutive records of the same campaign show the cold→warm
    trajectory.  Appending instead of overwriting keeps a regression
    trail the perf harness can diff.

    The read-modify-write append is safe against concurrent campaigns:
    the whole cycle runs under an advisory lock (where the platform
    supports it) and the updated history lands via temp file +
    ``os.replace``, so a reader never sees a torn file and two writers
    cannot drop each other's records.  The lock side-file lives under
    the system temp directory, keyed by a hash of the resolved target
    path — not next to the history file — so benchmark runs never
    litter the checkout with ``.lock`` artifacts.
    """
    record: "dict[str, Any]" = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "scale": scale_name,
        "jobs": jobs,
        # Host context: absolute events/s values are only comparable
        # within one machine, so cross-machine history needs to say
        # where each record came from.
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "experiment_wall_seconds": {
            name: round(seconds, 3)
            for name, seconds in experiment_seconds.items()
        },
        "total_wall_seconds": round(sum(experiment_seconds.values()), 3),
    }
    if engine is not None:
        from repro.sim.queue import resolve_backend_name

        record["engine"] = {
            "backend": resolve_backend_name(None),
            "events_per_second": round(engine.events_per_second, 1),
            "chain_events_per_second": round(
                engine.chain_events_per_second, 1),
            "pool_events_per_second": round(engine.pool_events_per_second, 1),
            "events_executed": engine.events_executed,
            "cancelled_events": engine.cancelled_events,
            "elapsed_seconds": round(engine.elapsed_seconds, 4),
        }
    if engine_ab is not None:
        ab_record: "dict[str, Any]" = {
            "baseline": engine_ab.baseline,
            "winner": engine_ab.winner,
            "improvement_vs_legacy": round(engine_ab.improvement(), 4),
            "events_per_second": {
                name: round(result.events_per_second, 1)
                for name, result in sorted(engine_ab.results.items())
            },
            "storm_events_per_second": {
                name: round(result.storm_events_per_second, 1)
                for name, result in sorted(engine_ab.results.items())
            },
        }
        if "array" in engine_ab.results and "bucket" in engine_ab.results:
            ab_record["array_dispatch_speedup_vs_bucket"] = round(
                engine_ab.dispatch_speedup("array", over="bucket"), 3)
        record["engine_ab"] = ab_record
    if engine_idle_ab is not None:
        record["engine_idle_ab"] = {
            "speedup": round(engine_idle_ab.speedup, 2),
            "skip_spans": engine_idle_ab.skip_spans,
            "skipped_events": engine_idle_ab.skipped_events,
            "skipped_cycles": engine_idle_ab.skipped_cycles,
            "events_per_second": {
                name: round(result.events_per_second, 1)
                for name, result in sorted(engine_idle_ab.results.items())
            },
        }
    if engine_fork_ab is not None:
        record["engine_fork_ab"] = {
            "speedup": round(engine_fork_ab.speedup, 2),
            "memory_ratio": round(engine_fork_ab.memory_ratio, 2),
            "branches": engine_fork_ab.branches,
            "nodes": engine_fork_ab.nodes,
            "leaf_digest": engine_fork_ab.leaf_digest,
            "forks_per_second": {
                name: round(result.forks_per_second, 1)
                for name, result in sorted(engine_fork_ab.results.items())
            },
            "retained_bytes": {
                name: result.retained_bytes
                for name, result in sorted(engine_fork_ab.results.items())
            },
        }
    if engine_subtree_ab is not None:
        record["engine_subtree_ab"] = {
            "speedup": round(engine_subtree_ab.speedup, 2),
            "memory_ratio": round(engine_subtree_ab.memory_ratio, 2),
            "branches": engine_subtree_ab.branches,
            "nodes": engine_subtree_ab.nodes,
            "leaf_digest": engine_subtree_ab.leaf_digest,
            "budget_bytes": engine_subtree_ab.budget_bytes,
            "unlimited_peak_bytes": engine_subtree_ab.unlimited_peak_bytes,
            "spilled_fragments": engine_subtree_ab.spilled_fragments,
            "spill_bytes_written": engine_subtree_ab.spill_bytes_written,
            "nodes_per_second": {
                name: round(result.nodes_per_second, 1)
                for name, result in sorted(
                    engine_subtree_ab.results.items())
            },
            "peak_retained_bytes": {
                name: result.peak_retained_bytes
                for name, result in sorted(
                    engine_subtree_ab.results.items())
            },
        }
    if store_ab is not None:
        stats = store_ab.write_stats
        record["store_ab"] = {
            "overhead": round(store_ab.overhead, 4),
            "write_ratio": round(store_ab.write_ratio, 4),
            "plain_seconds": round(store_ab.plain_seconds, 4),
            "store_seconds": round(store_ab.store_seconds, 4),
            "artifacts": stats.artifacts_written,
            "rows": stats.rows_written,
            "bytes_written": stats.bytes_written,
            "write_seconds": round(stats.write_seconds, 4),
        }
    if analysis is not None:
        record["analysis"] = {
            "cold_seconds": round(analysis.cold_seconds, 4),
            "memoized_seconds": round(analysis.memoized_seconds, 4),
            "speedup": round(analysis.speedup, 2),
            "bounds_per_round": analysis.bounds_per_round,
            "identical_bounds": analysis.identical,
        }
    if cache is not None:
        record["cache"] = (dict(cache) if isinstance(cache, Mapping)
                           else cache.as_dict())
    if telemetry is not None:
        record["campaign"] = telemetry.as_dict()

    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    # Key the advisory lock by the resolved target so every writer to
    # the same history file contends on the same side-file, wherever
    # they were launched from.
    lock_key = hashlib.sha256(
        str(target.resolve()).encode("utf-8")).hexdigest()[:16]
    lock_path = Path(tempfile.gettempdir()) / f"repro-bench-{lock_key}.lock"
    with open(lock_path, "a+") as lock_file:
        if fcntl is not None:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
        try:
            history: "dict[str, Any]" = {"runs": []}
            if target.exists():
                try:
                    loaded = json.loads(target.read_text())
                except (OSError, ValueError):
                    loaded = None
                if (isinstance(loaded, dict)
                        and isinstance(loaded.get("runs"), list)):
                    history = loaded
            history["runs"].append(record)
            fd, tmp_name = tempfile.mkstemp(dir=target.parent or ".",
                                            prefix=target.name,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(json.dumps(history, indent=2) + "\n")
                os.replace(tmp_name, target)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        finally:
            if fcntl is not None:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)
    return record
