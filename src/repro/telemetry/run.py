"""Deterministic traced replay backing ``--trace-out``.

Parallel campaigns run their workers with tracing disabled — the trace
stream is too large to pickle across process boundaries, and recording
it would distort the timing the campaign measures.  To still produce a
Chrome trace for a campaign invocation, this module re-runs one
*representative cell* of the fig6 experiment in-process with tracing
and CPU-segment recording enabled: scenario "b" (monitored
interposing, so the trace exercises the full IRQ path — raise, top
handler, monitor accept *and* deny, interposed windows, slot switches)
at the campaign's own scale and seed.

The replay is fully deterministic: the interarrival stream depends
only on (scale, seed), exactly as the campaign's own fig6b task does,
so the exported trace faithfully shows what the campaign simulated —
and its recorder counts reconcile exactly with the collected
hypervisor metrics, which the acceptance test pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.experiments.common import PaperSystemConfig, ScenarioResult
from repro.telemetry.collectors import collect_hypervisor, collect_world_store
from repro.telemetry.perfetto import write_chrome_trace
from repro.telemetry.registry import MetricsRegistry

#: Scenario the traced replay runs (see module docstring).
TRACED_SCENARIO = "b"


@dataclass
class TracedRun:
    """One in-process run with tracing + CPU segments enabled."""

    scenario: str
    load: float
    seed: int
    result: ScenarioResult

    @property
    def hypervisor(self) -> Any:
        return self.result.hypervisor

    @property
    def trace(self) -> Any:
        return self.result.hypervisor.trace

    @property
    def clock(self) -> Any:
        return self.result.hypervisor.clock

    @property
    def cpu_segments(self) -> "list[Any]":
        segments = self.result.hypervisor.cpu.segments
        return list(segments) if segments is not None else []


def run_traced_fig6(irqs: int, seed: int,
                    scenario: str = TRACED_SCENARIO,
                    load_index: int = 0,
                    system: Optional[PaperSystemConfig] = None) -> TracedRun:
    """Replay one fig6 (scenario, load) cell with full observability.

    Mirrors :func:`repro.experiments.fig6.run_fig6_load` — same
    interarrival generation, same per-load seed derivation
    (``seed + load_index``), same policy selection — but on a system
    built with ``trace_enabled=True`` and ``record_cpu_segments=True``,
    and returning the *full* :class:`ScenarioResult` so the caller can
    reach the live hypervisor.
    """
    import dataclasses

    from repro.experiments.fig6 import SCENARIOS, Fig6Config
    from repro.core.monitor import DeltaMinusMonitor
    from repro.core.policy import MonitoredInterposing, NeverInterpose
    from repro.experiments.common import run_irq_scenario
    from repro.workloads.synthetic import (
        clip_to_dmin,
        exponential_interarrivals,
        lambda_for_load,
    )

    if scenario not in SCENARIOS:
        raise ValueError(
            f"scenario must be one of {SCENARIOS}, got {scenario!r}"
        )
    base = system if system is not None else PaperSystemConfig()
    traced_system = dataclasses.replace(
        base, trace_enabled=True, record_cpu_segments=True
    )
    config = Fig6Config(system=traced_system, irqs_per_load=irqs, seed=seed)
    clock = traced_system.clock()
    c_bh = clock.us_to_cycles(traced_system.bottom_handler_us)
    load = config.loads[load_index]
    lam = lambda_for_load(c_bh, load, traced_system.costs)
    intervals = exponential_interarrivals(
        config.irqs_per_load, lam, seed=config.seed + load_index
    )
    if scenario == "c":
        intervals = clip_to_dmin(intervals, lam)
    if scenario == "a":
        policy = NeverInterpose()
    else:
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(lam))
    result = run_irq_scenario(traced_system, policy, intervals)
    return TracedRun(scenario=scenario, load=load,
                     seed=config.seed + load_index, result=result)


def export_traced_run(run: TracedRun,
                      trace_path: "str | None" = None,
                      registry: Optional[MetricsRegistry] = None,
                      campaign: Any = None,
                      world_store: Any = None,
                      metadata: Optional[dict] = None) -> Optional[int]:
    """Export a traced run: Chrome trace file and/or metrics sampling.

    ``world_store`` (a :class:`~repro.sim.worldstore.WorldStore`, e.g.
    :func:`~repro.sim.worldstore.default_store`) adds the layered
    world store's capture and fragment-spill logs as Perfetto tracks
    and samples its ``sim_world_*`` sharing and spill metrics into
    the registry.

    Returns the number of trace events written (None when no
    ``trace_path`` was given).

    The exporter is a client of the run-artifact store's columnar
    trace representation (:mod:`repro.store.artifact`): the live
    recorder's events round-trip through the store's
    time/kind/data-id columns before rendering, so the Chrome trace
    is guaranteed byte-identical whether it is produced from a live
    run or replayed from a persisted artifact — the store tests pin
    this.
    """
    written = None
    if trace_path is not None:
        from repro.sim.trace import TraceRecorder
        from repro.store.artifact import (
            trace_events_from_columns,
            trace_events_to_columns,
        )

        meta = {
            "scenario": f"fig6{run.scenario}",
            "load": run.load,
            "seed": run.seed,
            "recorded_events": len(run.trace),
            "dropped_events": run.trace.dropped,
        }
        if metadata:
            meta.update(metadata)
        columns, interner = trace_events_to_columns(run.trace.events)
        recorder = TraceRecorder.from_events(
            trace_events_from_columns(columns, interner.strings)
        )
        written = write_chrome_trace(
            trace_path,
            recorder,
            clock=run.clock,
            cpu_segments=run.cpu_segments,
            campaign=campaign,
            engine=run.hypervisor.engine,
            world_store=world_store,
            metadata=meta,
        )
    if registry is not None:
        collect_hypervisor(registry, run.hypervisor,
                           run=f"fig6{run.scenario}")
        if world_store is not None:
            collect_world_store(registry, world_store)
    return written
