"""Zero-dependency metrics registry (counters, gauges, histograms).

A deliberately small, stdlib-only take on the Prometheus client-library
data model, sized for this reproduction's needs:

* three instrument types — :class:`Counter` (monotone), :class:`Gauge`
  (set/inc/dec) and :class:`Histogram` (fixed bucket bounds, cumulative
  counts plus sum/count) — each optionally labelled;
* one :class:`MetricsRegistry` that owns the instruments and renders
  them as a plain dict (:meth:`~MetricsRegistry.snapshot`), Prometheus
  text exposition (:meth:`~MetricsRegistry.render_prometheus`) or JSON
  (:meth:`~MetricsRegistry.to_json` / :meth:`~MetricsRegistry.write_json`).

The overhead contract mirrors :class:`~repro.sim.trace.TraceRecorder`:
a registry constructed with ``enabled=False`` hands out shared no-op
instruments whose ``inc``/``set``/``observe`` bodies are a bare
``return``, so instrumentation sites stay no-op-cheap when telemetry is
off (the benchmark guard in ``benchmarks/test_bench_telemetry.py`` pins
this).  Most of the simulator is instrumented *pull-style* anyway — the
hot paths maintain plain integer counters and the collectors in
:mod:`repro.telemetry.collectors` sample them into a registry after the
run — so enabling telemetry costs nothing on the event dispatch path.

Label usage follows the Prometheus conventions: an unlabelled
instrument has exactly one time series; a labelled one materializes a
child series per distinct label-value tuple via :meth:`Metric.labels`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the Prometheus client defaults closely enough for wall-time data).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Identifies snapshots written by :meth:`MetricsRegistry.write_json`.
METRICS_FORMAT = "repro-metrics-v1"

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Union[int, float]) -> str:
    # Integers render without a trailing ``.0`` so counter output stays
    # diff-friendly; floats use repr (shortest round-trip form).
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _NoopSeries:
    """Shared do-nothing child handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        return

    def dec(self, amount: Union[int, float] = 1) -> None:
        return

    def set(self, value: Union[int, float]) -> None:
        return

    def observe(self, value: Union[int, float]) -> None:
        return

    @property
    def value(self) -> float:
        return 0.0


_NOOP_SERIES = _NoopSeries()


class _NoopMetric(_NoopSeries):
    """Disabled-registry instrument: ``labels(...)`` returns itself."""

    __slots__ = ()

    def labels(self, **label_values: str) -> "_NoopMetric":
        return self


_NOOP_METRIC = _NoopMetric()


class _CounterSeries:
    """One (label-tuple) time series of a counter."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class _GaugeSeries:
    """One (label-tuple) time series of a gauge."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value


class _HistogramSeries:
    """One (label-tuple) time series of a histogram."""

    __slots__ = ("_bounds", "_bucket_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]):
        self._bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._sum: float = 0.0
        self._count: int = 0

    def observe(self, value: Union[int, float]) -> None:
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self._bounds):
            if value <= bound:
                self._bucket_counts[index] += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def buckets(self) -> "list[tuple[float, int]]":
        """Cumulative ``(upper_bound, count)`` pairs (excluding +Inf)."""
        return list(zip(self._bounds, self._bucket_counts))


class Metric:
    """One named instrument with zero or more labelled child series."""

    _series_type = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._series: "dict[tuple[str, ...], Any]" = {}

    # -- child management ------------------------------------------------

    def _new_series(self):
        raise NotImplementedError

    def labels(self, **label_values: str):
        """The child series for one label-value combination (memoized)."""
        if set(label_values) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.labelnames)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._new_series()
        return series

    def _default_series(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    # -- read-side -------------------------------------------------------

    def series(self) -> "list[tuple[dict[str, str], Any]]":
        """``(labels-dict, series)`` pairs in insertion order."""
        return [
            (dict(zip(self.labelnames, key)), series)
            for key, series in self._series.items()
        ]

    def snapshot(self) -> "dict[str, Any]":
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"series={len(self._series)})")


class Counter(Metric):
    """Monotonically increasing count (events fired, cache hits, ...)."""

    _series_type = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._default_series().inc(amount)

    @property
    def value(self) -> Union[int, float]:
        return self._default_series().value

    def snapshot(self) -> "dict[str, Any]":
        return {
            "type": "counter",
            "help": self.help,
            "values": [
                {"labels": labels, "value": series.value}
                for labels, series in self.series()
            ],
        }


class Gauge(Metric):
    """Point-in-time value (heap depth, queue occupancy, utilization)."""

    _series_type = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: Union[int, float]) -> None:
        self._default_series().set(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._default_series().inc(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._default_series().dec(amount)

    @property
    def value(self) -> Union[int, float]:
        return self._default_series().value

    def snapshot(self) -> "dict[str, Any]":
        return {
            "type": "gauge",
            "help": self.help,
            "values": [
                {"labels": labels, "value": series.value}
                for labels, series in self.series()
            ],
        }


class Histogram(Metric):
    """Distribution with fixed cumulative buckets (task wall times)."""

    _series_type = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.buckets = bounds

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets)

    def observe(self, value: Union[int, float]) -> None:
        self._default_series().observe(value)

    def snapshot(self) -> "dict[str, Any]":
        return {
            "type": "histogram",
            "help": self.help,
            "values": [
                {
                    "labels": labels,
                    "sum": series.sum,
                    "count": series.count,
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in series.buckets()
                    ],
                }
                for labels, series in self.series()
            ],
        }


class MetricsRegistry:
    """Owns a named set of instruments and renders them for export.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling them
    twice with the same name returns the same instrument (with a type
    check), so collectors can run repeatedly against one registry.

    A registry constructed with ``enabled=False`` returns shared no-op
    instruments instead — the disabled path allocates nothing and every
    emit degrades to a single attribute call returning immediately.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: "dict[str, Metric]" = {}

    # -- instrument factories -------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            if tuple(labelnames) != existing.labelnames:
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        if not self.enabled:
            return _NOOP_METRIC  # type: ignore[return-value]
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        if not self.enabled:
            return _NOOP_METRIC  # type: ignore[return-value]
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NOOP_METRIC  # type: ignore[return-value]
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # -- read-side -------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> "list[str]":
        return sorted(self._metrics)

    def value(self, name: str, **label_values: str) -> Union[int, float]:
        """Convenience: current value of one counter/gauge series.

        Raises ``KeyError`` for unknown metrics — tests use this to
        reconcile counters against independently derived counts.
        """
        metric = self._metrics[name]
        series = metric.labels(**label_values)
        return series.value

    def snapshot(self) -> "dict[str, Any]":
        """All instruments as one plain-data dict (JSON-safe)."""
        return {
            name: self._metrics[name].snapshot() for name in self.names()
        }

    # -- exporters -------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: "list[str]" = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric._series_type}")
            for labels, series in metric.series():
                label_text = ",".join(
                    f'{key}="{_escape_label_value(value)}"'
                    for key, value in labels.items()
                )
                if isinstance(metric, Histogram):
                    for bound, count in series.buckets():
                        bucket_labels = label_text + ("," if label_text else "")
                        lines.append(
                            f"{name}_bucket{{{bucket_labels}"
                            f'le="{_format_value(bound)}"}} {count}'
                        )
                    bucket_labels = label_text + ("," if label_text else "")
                    lines.append(
                        f'{name}_bucket{{{bucket_labels}le="+Inf"}} '
                        f"{series.count}"
                    )
                    suffix = f"{{{label_text}}}" if label_text else ""
                    lines.append(f"{name}_sum{suffix} "
                                 f"{_format_value(series.sum)}")
                    lines.append(f"{name}_count{suffix} {series.count}")
                else:
                    suffix = f"{{{label_text}}}" if label_text else ""
                    lines.append(
                        f"{name}{suffix} {_format_value(series.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, metadata: "Mapping[str, Any] | None" = None) -> str:
        """JSON document with the snapshot plus free-form metadata."""
        payload = {
            "format": METRICS_FORMAT,
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
            + "Z",
            "metadata": dict(metadata or {}),
            "metrics": self.snapshot(),
        }
        return json.dumps(payload, indent=2, sort_keys=False) + "\n"

    def write_json(self, path: "str | Path",
                   metadata: "Mapping[str, Any] | None" = None) -> Path:
        """Write :meth:`to_json` to a file; returns the path."""
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(metadata))
        return target

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, metrics={len(self._metrics)})"


def load_metrics_json(path: "str | Path") -> "dict[str, Any]":
    """Load and validate a ``--metrics-json`` file."""
    payload = json.loads(Path(path).read_text())
    if (not isinstance(payload, dict)
            or payload.get("format") != METRICS_FORMAT
            or not isinstance(payload.get("metrics"), dict)):
        raise ValueError(f"{path} is not a repro metrics snapshot")
    return payload
