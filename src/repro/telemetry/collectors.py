"""Collectors: sample simulator state into a metrics registry.

The hot paths of the reproduction (engine dispatch loop, hypervisor
IRQ path) maintain plain integer counters as they always have; these
collectors *pull* those counters into a
:class:`~repro.telemetry.registry.MetricsRegistry` after (or between)
runs.  Pull-based collection keeps the overhead contract trivial — the
simulation executes zero telemetry instructions per event — while the
counter values still reconcile exactly with the trace stream, because
the hypervisor bumps them at the very sites that emit the
corresponding :class:`~repro.sim.trace.TraceKind` events.

Metric-name prefixes group by layer:

========== =====================================================
``sim_``   discrete-event engine (events scheduled/fired/
           cancelled, heap depth, simulated time)
``hv_``    hypervisor/IRQ path (raised/coalesced/delivered IRQs,
           top/bottom handler runs, monitor accept/deny,
           interposed windows, budget exhaustions, slot and
           context switches, CPU cycles by category)
``cache_`` campaign result cache (hits/misses/invalidations)
``campaign_`` campaign runner (task wall times, worker
           utilization, queue wait)
``sim_world_`` layered world store (layers, fragment dedup,
           bytes shared, fast vs full captures, data forks)
``store_`` run-artifact store (artifacts/rows/bytes written,
           artifacts scanned, rows/bytes read, query timings)
========== =====================================================
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.registry import MetricsRegistry

#: Histogram bounds for per-task campaign wall times (seconds).
TASK_SECONDS_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                        2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def collect_engine(registry: MetricsRegistry, engine: Any,
                   run: str = "") -> None:
    """Sample a :class:`~repro.sim.engine.SimulationEngine`."""
    labels = {"run": run}
    registry.counter(
        "sim_events_scheduled_total",
        "Events ever scheduled on the engine heap",
        ("run",),
    ).labels(**labels).inc(engine.events_scheduled)
    registry.counter(
        "sim_events_executed_total",
        "Event callbacks dispatched by the run loop",
        ("run",),
    ).labels(**labels).inc(engine.events_executed)
    registry.counter(
        "sim_events_cancelled_total",
        "Events cancelled before firing (lazy heap deletion)",
        ("run",),
    ).labels(**labels).inc(engine.events_cancelled)
    registry.gauge(
        "sim_pending_events",
        "Scheduled-but-unfired events (exact live counter)",
        ("run",),
    ).labels(**labels).set(engine.pending_events)
    registry.counter(
        "sim_heap_compactions_total",
        "Heap rebuilds discarding lazily-cancelled entries",
        ("run",),
    ).labels(**labels).inc(engine.compactions)
    registry.gauge(
        "sim_heap_depth",
        "Heap entries, including lazily-cancelled dead ones",
        ("run",),
    ).labels(**labels).set(engine.heap_depth)
    registry.counter(
        "sim_dispatch_batches_total",
        "Distinct-timestamp batches drained by the dispatch loops "
        "(events/batches = average same-cycle batch size)",
        ("run",),
    ).labels(**labels).inc(engine.dispatch_batches)
    registry.gauge(
        "sim_now_cycles",
        "Current simulation time in cycles",
        ("run",),
    ).labels(**labels).set(engine.now)
    registry.gauge(
        "sim_queue_backend_info",
        "Queue backend selected for this engine (info gauge: value 1, "
        "backend carried in the label)",
        ("run", "backend"),
    ).labels(run=run, backend=getattr(engine, "backend_name", "unknown")).set(1)
    registry.counter(
        "sim_idle_skip_spans_total",
        "Quiescent TDMA gaps crossed analytically by the idle-skip engine",
        ("run",),
    ).labels(**labels).inc(getattr(engine, "skip_spans", 0))
    registry.counter(
        "sim_idle_skipped_events_total",
        "Events elided by idle-skip fast-forwards (still counted in "
        "sim_events_executed_total, preserving byte-identity)",
        ("run",),
    ).labels(**labels).inc(getattr(engine, "skipped_events", 0))
    registry.counter(
        "sim_idle_skipped_cycles_total",
        "Simulated cycles crossed by idle-skip fast-forwards",
        ("run",),
    ).labels(**labels).inc(getattr(engine, "skipped_cycles", 0))
    registry.gauge(
        "sim_idle_skip_info",
        "Idle-skip engine toggle for this engine (info gauge: value 1, "
        "state carried in the label)",
        ("run", "state"),
    ).labels(run=run,
             state=("on" if getattr(engine, "idle_skip_enabled", False)
                    else "off")).set(1)


def collect_world_store(registry: MetricsRegistry, store: Any,
                        run: str = "") -> None:
    """Sample a :class:`~repro.sim.worldstore.WorldStore`.

    The ``sim_world_layers_*`` family exposes the copy-on-write world
    store's sharing behaviour: how many immutable layers exist, how
    often a capture or fork deduplicated against an already-interned
    layer or fragment, and how many bytes the content-addressed
    fragment store holds versus how many a flat (deep-copy) store
    would have re-serialized (``bytes_shared``).  ``fast`` vs ``full``
    captures split captures that proved quiescence via the engine
    activity fingerprint (and so could diff part-by-part) from those
    that fell back to a complete re-serialization.  The
    ``sim_world_spill_*`` family tracks the cold-fragment disk tier:
    evictions past the resident-bytes budget, transparent fault-backs,
    and corrupt spill records treated as misses.
    """
    labels = {"run": run}
    stats = store.stats

    def counter(name: str, help_text: str, value: "int | float") -> None:
        registry.counter(name, help_text, ("run",)).labels(**labels).inc(value)

    registry.gauge(
        "sim_world_layers",
        "Immutable copy-on-write layers interned in the world store",
        ("run",),
    ).labels(**labels).set(store.layer_count)
    registry.gauge(
        "sim_world_fragments",
        "Distinct content-addressed part fragments interned",
        ("run",),
    ).labels(**labels).set(store.fragment_count)
    counter("sim_world_layers_created_total",
            "Layers interned by captures and data-level forks",
            stats.layers_created)
    counter("sim_world_layer_dedup_hits_total",
            "Captures/forks that resolved to an already-interned layer",
            stats.layer_dedup_hits)
    counter("sim_world_fragment_dedup_hits_total",
            "Part fragments that were already interned (content hit)",
            stats.fragment_dedup_hits)
    counter("sim_world_bytes_stored_total",
            "Canonical-JSON bytes held by distinct fragments",
            stats.bytes_stored)
    counter("sim_world_bytes_shared_total",
            "Canonical-JSON bytes deduplicated away by fragment sharing",
            stats.bytes_shared)
    counter("sim_world_fast_captures_total",
            "Captures that proved quiescence via the engine fingerprint "
            "and diffed part-by-part against their fork basis",
            stats.fast_captures)
    counter("sim_world_full_captures_total",
            "Captures that re-serialized the whole world",
            stats.full_captures)
    counter("sim_world_data_forks_total",
            "Forks performed at the data level (no world restore)",
            stats.data_forks)
    counter("sim_world_parts_reused_total",
            "Per-part capture skips (epoch or digest unchanged)",
            stats.parts_reused)
    counter("sim_world_parts_recaptured_total",
            "Per-part re-serializations that produced a changed digest",
            stats.parts_recaptured)
    registry.gauge(
        "sim_world_resident_bytes",
        "Canonical-JSON bytes of fragments currently resident in RAM",
        ("run",),
    ).labels(**labels).set(store.resident_bytes)
    registry.gauge(
        "sim_world_spilled_fragments",
        "Cold fragments currently living only in the spill file",
        ("run",),
    ).labels(**labels).set(store.spilled_count)
    counter("sim_world_spill_fragments_total",
            "Cold fragments evicted to the on-disk spill tier",
            stats.fragments_spilled)
    counter("sim_world_spill_bytes_written_total",
            "Canonical-JSON bytes appended to the spill file",
            stats.spill_bytes_written)
    counter("sim_world_spill_faults_total",
            "Spilled fragments faulted back into RAM on resolve",
            stats.spill_faults)
    counter("sim_world_spill_bytes_read_total",
            "Canonical-JSON bytes read back from the spill file",
            stats.spill_bytes_read)
    counter("sim_world_spill_corrupt_records_total",
            "Spill records dropped as corrupt/truncated (treated as miss)",
            stats.spill_corrupt_records)
    counter("sim_world_spill_pinned_fragments_total",
            "Fragments pinned in RAM (value not JSON-faithful to its text)",
            stats.fragments_pinned)


def collect_store(registry: MetricsRegistry,
                  write_stats: Any = None,
                  query_stats: Any = None,
                  run: str = "") -> None:
    """Sample run-artifact store counters (:mod:`repro.store`).

    ``write_stats`` is a
    :class:`~repro.store.capture.StoreWriteStats` (campaign capture
    side), ``query_stats`` a
    :class:`~repro.store.runstore.StoreQueryStats` (scan/query side);
    either may be omitted.
    """
    labels = {"run": run}

    def counter(name: str, help_text: str, value: "int | float") -> None:
        registry.counter(name, help_text, ("run",)).labels(**labels).inc(value)

    if write_stats is not None:
        counter("store_artifacts_written_total",
                "Run artifacts persisted by campaign capture",
                write_stats.artifacts_written)
        counter("store_rows_written_total",
                "Latency rows persisted into run artifacts",
                write_stats.rows_written)
        counter("store_trace_rows_written_total",
                "Trace-event rows persisted into run artifacts",
                write_stats.trace_rows_written)
        counter("store_bytes_written_total",
                "Bytes of run-artifact data written",
                write_stats.bytes_written)
        counter("store_tasks_skipped_total",
                "Campaign tasks captured without latency data",
                write_stats.skipped_tasks)
        registry.gauge(
            "store_write_seconds",
            "Wall-clock seconds spent writing run artifacts",
            ("run",),
        ).labels(**labels).set(round(write_stats.write_seconds, 4))
    if query_stats is not None:
        counter("store_artifacts_scanned_total",
                "Artifact headers scanned by RunStore directory scans",
                query_stats.artifacts_scanned)
        counter("store_artifacts_read_total",
                "Artifacts fully parsed (checksummed) for queries",
                query_stats.artifacts_read)
        counter("store_rows_scanned_total",
                "Latency rows materialized for queries",
                query_stats.rows_scanned)
        counter("store_bytes_read_total",
                "Bytes of run-artifact data read for queries",
                query_stats.bytes_read)
        counter("store_queries_total",
                "Aggregate/diff queries answered by RunStore",
                query_stats.queries)
        registry.gauge(
            "store_query_seconds",
            "Wall-clock seconds spent scanning and answering queries",
            ("run",),
        ).labels(**labels).set(round(query_stats.query_seconds, 4))


def collect_hypervisor(registry: MetricsRegistry, hv: Any,
                       run: str = "") -> None:
    """Sample a :class:`~repro.hypervisor.hypervisor.Hypervisor`.

    The ``hv_top_handler_*`` / ``hv_bottom_handler_*`` /
    ``hv_monitor_*`` counters reconcile 1:1 with
    ``hv.trace.of_kind(...)`` counts when tracing is enabled (pinned by
    ``tests/test_telemetry.py``), and ``hv_irqs_raised_total`` with the
    ``IRQ_RAISED`` trace stream (a raise of an already-pending line is
    coalesced, not raised).
    """
    labels = {"run": run}
    stats = hv.stats

    def counter(name: str, help_text: str, value: "int | float") -> None:
        registry.counter(name, help_text, ("run",)).labels(**labels).inc(value)

    intc = hv.intc
    raised = coalesced = delivered = 0
    for line in range(intc.num_lines):
        raised += intc.raise_count(line) - intc.coalesced_count(line)
        coalesced += intc.coalesced_count(line)
        delivered += intc.delivered_count(line)
    counter("hv_irqs_raised_total",
            "IRQ lines asserted (excluding coalesced re-raises)", raised)
    counter("hv_irqs_coalesced_total",
            "Raise requests merged into an already-pending line", coalesced)
    counter("hv_irqs_dispatched_total",
            "Interrupt-controller dispatcher invocations", delivered)
    counter("hv_irqs_delivered_total",
            "Device IRQs that reached a top handler", stats.irqs_delivered)
    counter("hv_irqs_throttled_total",
            "IRQs suppressed by a source-level throttle",
            stats.irqs_throttled)
    counter("hv_spurious_irqs_total",
            "Deliveries on lines without a registered source",
            stats.spurious_irqs)

    counter("hv_top_handler_runs_total",
            "Top handler activations (TOP_HANDLER_START)",
            stats.top_handler_starts)
    counter("hv_top_handler_completions_total",
            "Top handler completions (TOP_HANDLER_END)",
            stats.top_handler_ends)
    counter("hv_bottom_handler_runs_total",
            "Bottom handler dispatches (BOTTOM_HANDLER_START)",
            stats.bottom_handler_starts)
    counter("hv_bottom_handler_completions_total",
            "Bottom handler completions (BOTTOM_HANDLER_END)",
            stats.bottom_handler_ends)
    counter("hv_bottom_handler_preemptions_total",
            "Interposed bottom handlers cut by a slot boundary",
            stats.bottom_handler_preemptions)
    counter("hv_budget_exhaustions_total",
            "Enforcement events (C_BH cap reached)",
            stats.budget_exhausted)

    counter("hv_monitor_consultations_total",
            "Foreign-slot IRQs that paid C_Mon", stats.monitor_consultations)
    counter("hv_monitor_accepts_total",
            "Interpose activations granted (MONITOR_ACCEPT)",
            stats.monitor_accepts)
    counter("hv_monitor_denies_total",
            "Interpose activations denied by policy (MONITOR_DENY)",
            stats.monitor_denies)
    counter("hv_structural_denials_total",
            "Interpose impossible (window already open)",
            stats.structural_denials)

    counter("hv_interposed_windows_total",
            "Interposed bottom-handler windows opened (INTERPOSE_START)",
            stats.windows_opened)
    counter("hv_interpose_ends_total",
            "Interpose windows closed or suspended (INTERPOSE_END)",
            stats.interpose_ends)
    counter("hv_windows_suspended_total",
            "Windows suspended by a slot boundary", stats.windows_suspended)
    counter("hv_slot_switches_total",
            "TDMA slot switches performed (SLOT_SWITCH)",
            stats.slot_switches)
    counter("hv_slot_switches_deferred_total",
            "Boundaries deferred until a window closed",
            stats.slot_switches_deferred)
    counter("hv_slots_skipped_total",
            "Whole slots skipped by late boundary delivery",
            hv.scheduler.slots_skipped)
    counter("hv_context_switches_total",
            "Partition context switches (all reasons)",
            hv.context_switches.total)
    for reason, count in hv.context_switches.counts.items():
        registry.counter(
            "hv_context_switches_by_reason_total",
            "Partition context switches by reason",
            ("run", "reason"),
        ).labels(run=run, reason=reason.value).inc(count)

    counter("hv_cpu_preemptions_total",
            "Executions preempted before budget completion",
            hv.cpu.preemptions)
    for category, cycles in sorted(hv.cpu.consumed_by_category.items()):
        registry.counter(
            "hv_cpu_cycles_total",
            "CPU cycles charged per accounting category",
            ("run", "category"),
        ).labels(run=run, category=category).inc(cycles)

    for name, partition in sorted(hv.partitions.items()):
        queue = partition.irq_queue
        registry.gauge(
            "hv_irq_queue_depth",
            "Pending emulated IRQs per partition queue",
            ("run", "partition"),
        ).labels(run=run, partition=name).set(len(queue))
        registry.gauge(
            "hv_irq_queue_max_depth",
            "High-water mark of the partition IRQ queue",
            ("run", "partition"),
        ).labels(run=run, partition=name).set(queue.max_depth)
        registry.counter(
            "hv_irq_queue_pushed_total",
            "Emulated IRQs ever queued per partition",
            ("run", "partition"),
        ).labels(run=run, partition=name).inc(queue.pushed_count)

    # Per-source δ⁻ monitor decisions, for sources whose policy carries
    # a DeltaMinusMonitor (MonitoredInterposing / learned policies).
    for source_name, source in sorted(getattr(hv, "_sources", {}).items()):
        monitor = getattr(source.policy, "monitor", None)
        if monitor is None or not hasattr(monitor, "stats"):
            continue
        mstats = monitor.stats()
        for decision in ("accepted", "denied"):
            registry.counter(
                "hv_source_monitor_decisions_total",
                "Per-source δ⁻ monitor decisions",
                ("run", "source", "decision"),
            ).labels(run=run, source=source_name,
                     decision=decision).inc(mstats[decision])

    collect_engine(registry, hv.engine, run=run)

    trace = hv.trace
    registry.counter(
        "trace_events_recorded_total",
        "TraceRecorder events currently retained",
        ("run",),
    ).labels(**labels).inc(len(trace))
    registry.counter(
        "trace_events_dropped_total",
        "TraceRecorder events evicted by the capacity bound",
        ("run",),
    ).labels(**labels).inc(trace.dropped)


def collect_cache(registry: MetricsRegistry, stats: Any) -> None:
    """Sample a :class:`~repro.experiments.cache.CacheStats`."""
    registry.counter(
        "cache_hits_total", "Campaign tasks replayed from the result cache",
    ).inc(stats.hits)
    registry.counter(
        "cache_misses_total", "Campaign tasks recomputed (cache miss)",
    ).inc(stats.misses)
    registry.counter(
        "cache_invalidations_total",
        "Stored entries discarded as corrupt or format-incompatible",
    ).inc(stats.invalidations)
    registry.counter(
        "cache_stores_total", "Results written to the cache",
    ).inc(stats.stores)
    registry.counter(
        "cache_bytes_read_total", "Bytes replayed from cache entries",
    ).inc(stats.bytes_read)
    registry.counter(
        "cache_bytes_written_total", "Bytes written to cache entries",
    ).inc(stats.bytes_written)
    registry.gauge(
        "cache_saved_seconds", "Recorded compute time of replayed hits",
    ).set(round(stats.saved_seconds, 6))


def collect_campaign(registry: MetricsRegistry, telemetry: Any) -> None:
    """Sample a :class:`~repro.experiments.runner.CampaignTelemetry`."""
    task_seconds = registry.histogram(
        "campaign_task_seconds",
        "Per-task compute wall time (cache hits excluded)",
        ("experiment", "kind"),
        buckets=TASK_SECONDS_BUCKETS,
    )
    queue_wait = registry.histogram(
        "campaign_task_queue_wait_seconds",
        "Delay between task submission and worker pickup",
        ("experiment",),
        buckets=TASK_SECONDS_BUCKETS,
    )
    tasks_total = registry.counter(
        "campaign_tasks_total",
        "Campaign tasks by outcome (computed vs replayed-from-cache)",
        ("experiment", "outcome"),
    )
    for task in telemetry.tasks:
        outcome = "cached" if task.cached else "computed"
        tasks_total.labels(experiment=task.experiment, outcome=outcome).inc()
        if not task.cached:
            task_seconds.labels(
                experiment=task.experiment, kind=task.kind,
            ).observe(task.wall_seconds)
            queue_wait.labels(experiment=task.experiment).observe(
                task.queue_wait_seconds
            )
    registry.gauge(
        "campaign_jobs", "Worker processes the campaign ran with",
    ).set(telemetry.jobs)
    registry.gauge(
        "campaign_wall_seconds", "End-to-end campaign wall time",
    ).set(round(telemetry.wall_seconds, 6))
    registry.gauge(
        "campaign_busy_seconds",
        "Summed task compute time across all workers",
    ).set(round(telemetry.busy_seconds, 6))
    registry.gauge(
        "campaign_worker_utilization",
        "busy_seconds / (wall_seconds * jobs), 0..1",
    ).set(round(telemetry.worker_utilization, 6))
