"""Unified telemetry layer: metrics, collectors and trace export.

Three pieces, all stdlib-only:

* :mod:`repro.telemetry.registry` — a process-local metrics registry
  (counters, gauges, histograms with labels) with snapshot, Prometheus
  text and JSON exporters;
* :mod:`repro.telemetry.collectors` — pull-based samplers that read
  the simulator's existing plain-int counters (engine, hypervisor/IRQ
  path, result cache, campaign runner) into a registry after a run, so
  the hot paths execute zero telemetry instructions;
* :mod:`repro.telemetry.perfetto` — a Chrome trace-event JSON exporter
  (``ui.perfetto.dev`` / ``chrome://tracing``) rendering TraceRecorder
  events, CPU occupancy lanes and campaign task spans as named tracks,
  plus :mod:`repro.telemetry.run`, the deterministic traced replay the
  CLI's ``--trace-out`` is backed by.
"""

from repro.telemetry.collectors import (
    collect_cache,
    collect_campaign,
    collect_engine,
    collect_hypervisor,
    collect_store,
    collect_world_store,
)
from repro.telemetry.perfetto import (
    TRACE_FORMAT,
    chrome_trace_events,
    load_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.registry import (
    METRICS_FORMAT,
    MetricsRegistry,
    load_metrics_json,
)
from repro.telemetry.run import TracedRun, export_traced_run, run_traced_fig6

__all__ = [
    "METRICS_FORMAT",
    "MetricsRegistry",
    "TRACE_FORMAT",
    "TracedRun",
    "chrome_trace_events",
    "collect_cache",
    "collect_campaign",
    "collect_engine",
    "collect_hypervisor",
    "collect_store",
    "collect_world_store",
    "export_traced_run",
    "load_chrome_trace",
    "load_metrics_json",
    "run_traced_fig6",
    "write_chrome_trace",
]
