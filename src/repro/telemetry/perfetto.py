"""Chrome trace-event (Perfetto) JSON export.

Converts a simulation run — the typed :class:`~repro.sim.trace.TraceRecorder`
stream plus the optional ``record_cpu_segments`` occupancy segments —
into the Chrome trace-event JSON format, loadable in ``ui.perfetto.dev``
or ``chrome://tracing``.

Track layout
------------
* **pid 1 — "Simulation CPU"**: one thread track per timeline lane
  (the same :func:`repro.metrics.timeline.lane_of` mapping the ASCII
  Gantt renderer uses — ``"RT"``, ``"RT BH"``, ``"HV"``, ...), each CPU
  segment a ``ph="X"`` complete event spanning its charged cycles.
* **pid 2 — "Hypervisor trace"**: one thread track per event family
  (IRQ, Monitor, Top handlers, ...), with **exactly one ``ph="i"``
  instant per recorded TraceEvent** — so per-kind instant counts equal
  ``TraceRecorder.of_kind(...)`` counts, which the tests pin.
* **pid 3 — "Campaign"**: one thread track per worker process, each
  executed campaign task a ``ph="X"`` span over its wall time.
* **pid 4 — "Engine"**: one "Idle-skip spans" thread; each quiescent
  gap the idle-skip engine crossed analytically (see
  ``SimulationEngine.skip_span_log``) is a ``ph="X"`` span annotated
  with the number of events elided — making the fast-forwarded
  stretches visible next to the semantic trace instants they bracket.
  A second "World captures" thread renders the layered world store's
  capture log (see ``WorldStore.capture_log``): one ``ph="i"`` instant
  per capture/fork at its simulation time, annotated with the capture
  kind (fast/full/fork), how many parts landed in the child layer, and
  the resulting layer depth.  A third "Fragment spill" thread renders
  the store's spill log (see ``WorldStore.spill_log``): one ``ph="i"``
  instant per spill batch / fault / corrupt-record miss, annotated
  with the fragment count and canonical-JSON bytes moved.

Timestamps are microseconds, as the format requires: simulation cycles
go through :meth:`~repro.sim.clock.Clock.cycles_to_us` when a clock is
supplied (raw cycles are used as µs otherwise — relative placement is
what matters for inspection), and campaign spans use wall-clock
offsets from the campaign start.  Events are emitted in recorder /
segment / task order, so timestamps are monotone within every track.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.metrics.timeline import lane_of
from repro.sim.trace import TraceKind, TraceRecorder

#: Identifies traces written by :func:`write_chrome_trace`.
TRACE_FORMAT = "repro-chrome-trace-v1"

#: Process ids of the four track groups.
PID_CPU = 1
PID_TRACE = 2
PID_CAMPAIGN = 3
PID_ENGINE = 4

#: TraceKind -> thread-track family under ``PID_TRACE``.  Every kind
#: maps somewhere (unknown/custom kinds fall through to "Other"), so
#: the exporter can never silently drop a recorded event.
KIND_FAMILIES: "dict[TraceKind, str]" = {
    TraceKind.IRQ_RAISED: "IRQ",
    TraceKind.IRQ_COALESCED: "IRQ",
    TraceKind.MONITOR_ACCEPT: "Monitor",
    TraceKind.MONITOR_DENY: "Monitor",
    TraceKind.TOP_HANDLER_START: "Top handlers",
    TraceKind.TOP_HANDLER_END: "Top handlers",
    TraceKind.BOTTOM_HANDLER_START: "Bottom handlers",
    TraceKind.BOTTOM_HANDLER_END: "Bottom handlers",
    TraceKind.BOTTOM_HANDLER_PREEMPTED: "Bottom handlers",
    TraceKind.BOTTOM_HANDLER_BUDGET_EXHAUSTED: "Bottom handlers",
    TraceKind.INTERPOSE_START: "Interpose",
    TraceKind.INTERPOSE_END: "Interpose",
    TraceKind.SLOT_SWITCH: "Scheduler",
    TraceKind.CONTEXT_SWITCH: "Scheduler",
    TraceKind.TASK_RELEASE: "Guest tasks",
    TraceKind.TASK_START: "Guest tasks",
    TraceKind.TASK_END: "Guest tasks",
    TraceKind.DEADLINE_MISS: "Guest tasks",
    TraceKind.IDLE: "Guest tasks",
    TraceKind.IPC_SEND: "IPC",
    TraceKind.IPC_DELIVER: "IPC",
    TraceKind.CUSTOM: "Other",
}

#: Stable display order of the trace-family thread tracks.
FAMILY_ORDER = ("IRQ", "Monitor", "Top handlers", "Bottom handlers",
                "Interpose", "Scheduler", "Guest tasks", "IPC", "Other")


def _json_safe(value: Any) -> Any:
    """Coerce a TraceEvent data value into something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


def _metadata(pid: int, name: str, tid: int = 0,
              thread_name: Optional[str] = None) -> "list[dict]":
    events = []
    if thread_name is None:
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})
    else:
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": thread_name}})
    return events


def chrome_trace_events(
    trace: Optional[TraceRecorder] = None,
    *,
    clock: Any = None,
    cpu_segments: Optional[Iterable[Any]] = None,
    campaign: Any = None,
    engine: Any = None,
    world_store: Any = None,
) -> "list[dict]":
    """Build the flat ``traceEvents`` list for one run.

    Parameters
    ----------
    trace:
        Recorder whose events become per-family instants (optional).
    clock:
        A :class:`~repro.sim.clock.Clock`; when given, cycle timestamps
        are converted to microseconds.
    cpu_segments:
        ``Cpu.segments`` from a run with ``record_cpu_segments=True``;
        rendered as complete events on per-lane tracks.
    campaign:
        A :class:`~repro.experiments.runner.CampaignTelemetry`;
        executed tasks become spans on per-worker tracks.
    engine:
        A :class:`~repro.sim.engine.SimulationEngine`; its recorded
        idle-skip spans become complete events on the "Engine" track
        (omitted entirely when no span was recorded).
    world_store:
        A :class:`~repro.sim.worldstore.WorldStore`; its capture log
        becomes instants on a "World captures" thread of the "Engine"
        track, and its spill log instants on a "Fragment spill"
        thread (each omitted entirely when nothing was logged).
    """
    to_us = (clock.cycles_to_us if clock is not None
             else lambda cycles: cycles)
    events: "list[dict]" = []

    if cpu_segments is not None:
        segments = list(cpu_segments)
        lanes: "dict[str, int]" = {}
        for segment in segments:
            lane = lane_of(segment.category)
            if lane not in lanes:
                lanes[lane] = len(lanes) + 1
        events.extend(_metadata(PID_CPU, "Simulation CPU"))
        for lane, tid in sorted(lanes.items(), key=lambda item: item[1]):
            events.extend(_metadata(PID_CPU, "", tid, lane))
        for segment in segments:
            start_us = to_us(segment.start)
            events.append({
                "ph": "X",
                "pid": PID_CPU,
                "tid": lanes[lane_of(segment.category)],
                "ts": start_us,
                "dur": to_us(segment.end) - start_us,
                "name": segment.label or segment.category,
                "cat": segment.category,
            })

    if trace is not None:
        recorded = trace.events
        families_used: "list[str]" = []
        for event in recorded:
            family = KIND_FAMILIES.get(event.kind, "Other")
            if family not in families_used:
                families_used.append(family)
        family_tids = {
            family: index + 1
            for index, family in enumerate(
                [f for f in FAMILY_ORDER if f in families_used]
            )
        }
        events.extend(_metadata(PID_TRACE, "Hypervisor trace"))
        for family, tid in sorted(family_tids.items(),
                                  key=lambda item: item[1]):
            events.extend(_metadata(PID_TRACE, "", tid, family))
        for event in recorded:
            family = KIND_FAMILIES.get(event.kind, "Other")
            events.append({
                "ph": "i",
                "s": "t",
                "pid": PID_TRACE,
                "tid": family_tids[family],
                "ts": to_us(event.time),
                "name": event.kind.value,
                "cat": family,
                "args": {key: _json_safe(value)
                         for key, value in event.data.items()},
            })

    spans = getattr(engine, "skip_span_log", None) if engine is not None else None
    captures = (getattr(world_store, "capture_log", None)
                if world_store is not None else None)
    spills = (getattr(world_store, "spill_log", None)
              if world_store is not None else None)
    if spans or captures or spills:
        events.extend(_metadata(PID_ENGINE, "Engine"))
    if spans:
        events.extend(_metadata(PID_ENGINE, "", 1, "Idle-skip spans"))
        for start, end, elided in spans:
            start_us = to_us(start)
            events.append({
                "ph": "X",
                "pid": PID_ENGINE,
                "tid": 1,
                "ts": start_us,
                "dur": to_us(end) - start_us,
                "name": f"idle-skip ({elided} events)",
                "cat": "idle_skip",
                "args": {"events_elided": elided,
                         "cycles": end - start},
            })

    if captures:
        events.extend(_metadata(PID_ENGINE, "", 2, "World captures"))
        # The log is in wall order; a store shared across worlds may
        # interleave simulation times, so sort (stably) to keep the
        # per-track monotonicity invariant the loader validates.
        for sim_time, kind, parts_changed, depth in sorted(
                captures, key=lambda entry: entry[0]):
            events.append({
                "ph": "i",
                "s": "t",
                "pid": PID_ENGINE,
                "tid": 2,
                "ts": to_us(sim_time),
                "name": f"capture:{kind}",
                "cat": "world_store",
                "args": {"parts_changed": parts_changed,
                         "layer_depth": depth},
            })

    if spills:
        events.extend(_metadata(PID_ENGINE, "", 3, "Fragment spill"))
        # Same wall-vs-simulation ordering caveat as the capture log.
        for sim_time, kind, fragments, nbytes in sorted(
                spills, key=lambda entry: entry[0]):
            events.append({
                "ph": "i",
                "s": "t",
                "pid": PID_ENGINE,
                "tid": 3,
                "ts": to_us(sim_time),
                "name": f"spill:{kind}",
                "cat": "world_store_spill",
                "args": {"fragments": fragments,
                         "bytes": nbytes},
            })

    if campaign is not None:
        workers: "dict[int, int]" = {}
        for task in campaign.tasks:
            if task.worker_pid not in workers:
                workers[task.worker_pid] = len(workers) + 1
        events.extend(_metadata(PID_CAMPAIGN, "Campaign"))
        for pid, tid in sorted(workers.items(), key=lambda item: item[1]):
            events.extend(_metadata(PID_CAMPAIGN, "", tid, f"worker {pid}"))
        for task in campaign.tasks:
            events.append({
                "ph": "X",
                "pid": PID_CAMPAIGN,
                "tid": workers[task.worker_pid],
                "ts": round(task.started_offset_seconds * 1e6, 3),
                "dur": round(task.wall_seconds * 1e6, 3),
                "name": f"{task.experiment}/{task.kind}[{task.index}]",
                "cat": "campaign_task",
                "args": {
                    "experiment": task.experiment,
                    "kind": task.kind,
                    "cached": task.cached,
                    "queue_wait_seconds": round(task.queue_wait_seconds, 6),
                },
            })

    return events


def write_chrome_trace(path: "str | os.PathLike[str]",
                       trace: Optional[TraceRecorder] = None,
                       *,
                       clock: Any = None,
                       cpu_segments: Optional[Iterable[Any]] = None,
                       campaign: Any = None,
                       engine: Any = None,
                       world_store: Any = None,
                       metadata: Optional[Mapping[str, Any]] = None) -> int:
    """Write a Chrome trace JSON file; returns the event count.

    The file is the standard ``{"traceEvents": [...]}`` object form
    with run metadata under ``otherData``, written atomically (temp
    file + ``os.replace``) so a crashed export never leaves a
    truncated, unloadable trace behind.
    """
    events = chrome_trace_events(trace, clock=clock,
                                 cpu_segments=cpu_segments,
                                 campaign=campaign,
                                 engine=engine,
                                 world_store=world_store)
    other: "dict[str, Any]" = {"format": TRACE_FORMAT}
    if metadata:
        other.update({str(key): _json_safe(value)
                      for key, value in metadata.items()})
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(events)


def load_chrome_trace(path: "str | os.PathLike[str]") -> "dict[str, Any]":
    """Load and validate a trace written by :func:`write_chrome_trace`.

    Checks the object form, the per-event required fields, and that
    timestamps are monotone non-decreasing within every ``(pid, tid)``
    track — the invariant the exporter promises.  Returns the parsed
    document; raises ``ValueError`` on any violation.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not an object-form Chrome trace")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    last_ts: "dict[tuple[int, int], float]" = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"{path}: event #{index} lacks a phase")
        if event["ph"] == "M":
            continue
        for required in ("pid", "tid", "ts", "name"):
            if required not in event:
                raise ValueError(
                    f"{path}: event #{index} lacks {required!r}"
                )
        track = (event["pid"], event["tid"])
        ts = float(event["ts"])
        if track in last_ts and ts < last_ts[track]:
            raise ValueError(
                f"{path}: event #{index} goes back in time on track "
                f"{track} ({ts} < {last_ts[track]})"
            )
        last_ts[track] = ts
    return document
