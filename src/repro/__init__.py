"""repro — reproduction of "Sufficient Temporal Independence and
Improved Interrupt Latencies in a Real-Time Hypervisor" (Beckert,
Neukirchner, Ernst, Petters; DAC 2014).

The package provides:

* :mod:`repro.sim` — discrete-event hardware substrate (engine, clock,
  interrupt controller, timers, CPU);
* :mod:`repro.hypervisor` — TDMA-scheduled hypervisor with split
  top/bottom interrupt handling;
* :mod:`repro.core` — the paper's contribution: δ⁻-monitored interposed
  bottom handlers with bounded interference;
* :mod:`repro.guestos` — fixed-priority guest OS kernel;
* :mod:`repro.analysis` — busy-window worst-case latency analysis
  (Eqs. 3–16);
* :mod:`repro.workloads` — IRQ workload generators (exponential and
  automotive-trace);
* :mod:`repro.metrics` — histograms, classification and reporting;
* :mod:`repro.baselines` — boost and source-throttling baselines;
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart: see ``examples/quickstart.py`` for a complete runnable
scenario.
"""

from repro.core import (
    DeltaLearner,
    DeltaMinusMonitor,
    DminInterferenceBound,
    HandlingMode,
    InterferenceKind,
    InterferenceLedger,
    MonitoredInterposing,
    NeverInterpose,
    SelfLearningInterposing,
    verify_sufficient_independence,
)
from repro.guestos import GuestKernel, GuestTask
from repro.hypervisor import (
    CostModel,
    Hypervisor,
    HypervisorConfig,
    IpcRouter,
    IrqSource,
    LatencyRecord,
    Partition,
    SlotConfig,
    TdmaScheduler,
)
from repro.sim import Clock, IntervalSequenceTimer, SimulationEngine

__version__ = "1.0.0"

__all__ = [
    "DeltaLearner",
    "DeltaMinusMonitor",
    "DminInterferenceBound",
    "HandlingMode",
    "InterferenceKind",
    "InterferenceLedger",
    "MonitoredInterposing",
    "NeverInterpose",
    "SelfLearningInterposing",
    "verify_sufficient_independence",
    "GuestKernel",
    "GuestTask",
    "CostModel",
    "Hypervisor",
    "HypervisorConfig",
    "IpcRouter",
    "IrqSource",
    "LatencyRecord",
    "Partition",
    "SlotConfig",
    "TdmaScheduler",
    "Clock",
    "IntervalSequenceTimer",
    "SimulationEngine",
    "__version__",
]
