"""Baseline mechanisms from the related-work discussion (Section 2)."""

from repro.baselines.boost import BoostPolicy
from repro.baselines.throttling import (
    InterruptThrottle,
    MinDistanceThrottle,
    TokenBucketThrottle,
)

__all__ = [
    "BoostPolicy",
    "InterruptThrottle",
    "MinDistanceThrottle",
    "TokenBucketThrottle",
]
