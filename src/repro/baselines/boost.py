"""Xen-style IRQ boost baseline (Ongaro et al., Section 2).

Xen's credit scheduler was extended with a priority class above all
regular domains: whenever an interrupt event is delivered to a
partition, the partition is immediately boosted to run and respond.
Kim et al. refined the accounting granularity.  The effect on latency
is the desired one, but — as the paper argues — "the lack of temporal
partition enforcement within Xen is not suitable for real-time
workloads": nothing bounds how often a partition is boosted, so the
interference on other partitions grows with the IRQ arrival rate and
complete/sufficient temporal independence is lost.

In our framework the boost baseline is an interposing policy that
grants *every* foreign-slot IRQ without consulting any monitor.  The
per-activation budget C_BH is still enforced (Xen's boost slice plays
that role), but the *aggregate* interference in a window is unbounded:
``I(Δt) -> η⁺_arrivals(Δt) · C'_BH`` with no shaping of the arrival
stream.  The ablation experiment (abl-boost) demonstrates the broken
Eq. 2 budget under a burst.
"""

from __future__ import annotations

from repro.core.policy import AlwaysInterpose


class BoostPolicy(AlwaysInterpose):
    """Grant every foreign-slot IRQ, Xen-boost style.

    Identical decision behaviour to :class:`AlwaysInterpose`; the
    subclass exists so experiments and traces name the baseline
    explicitly, and to carry the boost statistics.
    """

    def __init__(self):
        self._boosts = 0

    def request_interpose(self, time: int) -> bool:
        self._boosts += 1
        return True

    @property
    def boost_count(self) -> int:
        """Number of boost grants issued."""
        return self._boosts

    def snapshot_state(self) -> dict:
        return {"boosts": self._boosts}

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "BoostPolicy":
        policy = cls()
        policy._boosts = state["boosts"]
        return policy
