"""Interrupt-source throttling baseline (Regehr & Duongsaa, Section 2).

"Preventing interrupt overload" throttles overloading interrupts at
their source: incoming requests are monitored and, once a prescribed
limit is reached, the interrupt flag is not cleared (the source stays
disabled) until a new interrupt is permissible again.  Requests
arriving while the source is disabled merge into the single pending
flag (IRQ flags are not counting), so excess activations are lost.

This protects against overload but — unlike the paper's mechanism —
does nothing for the latency of IRQs waiting for a foreign TDMA slot:
admitted interrupts still take the delayed path.  The ablation
experiment contrasts exactly this.

Two classic shapes are provided:

* :class:`MinDistanceThrottle` — one admitted IRQ per ``min_distance``
  (the arrival-rate counterpart of the paper's d_min condition);
* :class:`TokenBucketThrottle` — bursts of up to ``burst`` admitted
  IRQs, refilled at one token per ``refill_period``.
"""

from __future__ import annotations

from typing import Optional


class InterruptThrottle:
    """Interface: admit or suppress an IRQ arrival at the source."""

    def admit(self, time: int) -> bool:
        """True to deliver the IRQ, False to suppress (merge) it."""
        raise NotImplementedError

    @property
    def suppressed_count(self) -> int:
        raise NotImplementedError


class MinDistanceThrottle(InterruptThrottle):
    """Admit at most one IRQ per ``min_distance`` cycles.

    Unlike the δ⁻ monitor — which *defers* non-conformant bottom
    handlers to the home slot — a throttled arrival is suppressed
    entirely; only the pending flag (one outstanding request) remains.
    """

    def __init__(self, min_distance: int):
        if min_distance <= 0:
            raise ValueError(f"min distance must be positive, got {min_distance}")
        self.min_distance = min_distance
        self._last_admitted: Optional[int] = None
        self._admitted = 0
        self._suppressed = 0

    def admit(self, time: int) -> bool:
        if (self._last_admitted is not None
                and time - self._last_admitted < self.min_distance):
            self._suppressed += 1
            return False
        self._last_admitted = time
        self._admitted += 1
        return True

    @property
    def admitted_count(self) -> int:
        return self._admitted

    @property
    def suppressed_count(self) -> int:
        return self._suppressed

    def snapshot_state(self) -> dict:
        return {
            "min_distance": self.min_distance,
            "last_admitted": self._last_admitted,
            "admitted": self._admitted,
            "suppressed": self._suppressed,
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "MinDistanceThrottle":
        throttle = cls(state["min_distance"])
        throttle._last_admitted = state["last_admitted"]
        throttle._admitted = state["admitted"]
        throttle._suppressed = state["suppressed"]
        return throttle


class TokenBucketThrottle(InterruptThrottle):
    """Token-bucket admission: bursts up to ``burst``, sustained rate
    one IRQ per ``refill_period`` cycles."""

    def __init__(self, burst: int, refill_period: int):
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        if refill_period <= 0:
            raise ValueError(f"refill period must be positive, got {refill_period}")
        self.burst = burst
        self.refill_period = refill_period
        self._tokens = float(burst)
        self._last_time = 0
        self._admitted = 0
        self._suppressed = 0

    def admit(self, time: int) -> bool:
        if time < self._last_time:
            raise ValueError(
                f"arrivals must be monotone: {time} after {self._last_time}"
            )
        elapsed = time - self._last_time
        self._last_time = time
        self._tokens = min(
            float(self.burst), self._tokens + elapsed / self.refill_period
        )
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self._admitted += 1
            return True
        self._suppressed += 1
        return False

    @property
    def admitted_count(self) -> int:
        return self._admitted

    @property
    def suppressed_count(self) -> int:
        return self._suppressed

    def snapshot_state(self) -> dict:
        return {
            "burst": self.burst,
            "refill_period": self.refill_period,
            "tokens": self._tokens,
            "last_time": self._last_time,
            "admitted": self._admitted,
            "suppressed": self._suppressed,
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "TokenBucketThrottle":
        throttle = cls(state["burst"], state["refill_period"])
        throttle._tokens = state["tokens"]
        throttle._last_time = state["last_time"]
        throttle._admitted = state["admitted"]
        throttle._suppressed = state["suppressed"]
        return throttle
