"""Columnar run-artifact store and campaign query layer.

``repro.store`` finishes the columnar turn ``LatencyColumns`` started:
every campaign task's measured latency columns (and, for traced
replays, the trace-event columns) persist as compact stdlib-``array``
binary artifacts with interned string tables
(:mod:`~repro.store.artifact`), the campaign runner captures one
artifact per task plus an index (:mod:`~repro.store.capture`), and a
:class:`~repro.store.runstore.RunStore` answers filter / aggregate /
diff queries across whole campaigns — "p99.9 interposed latency
across every scenario at every load bound" is one call against
persisted artifacts, not a re-run.  The ``python -m repro.experiments
query`` subcommand (:mod:`~repro.store.cli`) exposes the same queries
as tables or JSON, and :mod:`~repro.store.benchmark` races capture
against plain execution to keep the write cost under the 5% bar.
"""

from repro.store.artifact import (
    ARTIFACT_SUFFIX,
    FORMAT_VERSION,
    ArtifactError,
    ArtifactWriter,
    RunArtifact,
    trace_events_from_columns,
    trace_events_to_columns,
)
from repro.store.benchmark import StoreABResult, measure_store_ab
from repro.store.capture import (
    CampaignStoreWriter,
    StoreWriteStats,
    artifact_from_hypervisor,
    campaign_metadata,
    extract_summaries,
    task_metadata,
)
from repro.store.runstore import (
    AggregateResult,
    ArtifactRef,
    DiffResult,
    GroupDelta,
    RunStore,
    StoreQueryStats,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "FORMAT_VERSION",
    "AggregateResult",
    "ArtifactError",
    "ArtifactRef",
    "ArtifactWriter",
    "CampaignStoreWriter",
    "DiffResult",
    "GroupDelta",
    "RunArtifact",
    "RunStore",
    "StoreABResult",
    "StoreQueryStats",
    "StoreWriteStats",
    "artifact_from_hypervisor",
    "campaign_metadata",
    "extract_summaries",
    "measure_store_ab",
    "task_metadata",
    "trace_events_from_columns",
    "trace_events_to_columns",
]
