"""The columnar run-artifact format (``.rpart``).

One artifact persists the measured output of one campaign task — its
latency columns (the same ``source/seq/arrival/completion/mode`` data
:class:`~repro.hypervisor.hypervisor.LatencyColumns` keeps in memory)
plus, when available, the trace-event columns of a traced run — as a
single compact binary file built entirely from stdlib ``array``
buffers:

========== ==========================================================
section    layout
========== ==========================================================
magic      ``b"RPRSTOR1"`` + ``u32`` format version
header     ``u32`` length + JSON: byteorder, column schemas, and the
           free-form run ``metadata`` (experiment, kind, scenario,
           scale, seed, queue backend, idle-skip flag, source digest —
           the same fingerprint fields the result cache uses)
chunks     ``b"CHNK"`` + ``u8`` kind (latency/trace) + ``u64`` rows +
           one raw ``array.tobytes()`` buffer per schema column,
           each prefixed with its ``u64`` byte length
footer     ``b"FOOT"`` + ``u32`` length + JSON: the interned string
           table (sources, legs, handling modes, trace kinds, trace
           data blobs all share one table) and the total row counts
checksum   ``b"SUM0"`` + raw SHA-256 of every preceding byte
========== ==========================================================

Strings never appear in the row data: every string-valued cell is an
``array('i')`` id into the footer's interned table, so a million-row
artifact stores each source name exactly once.  Chunks stream: a
writer may append row batches incrementally (the header carries no
counts; the footer, written on close, does), and the finished file
lands atomically via temp file + ``os.replace`` so a directory scan
never sees a half-written artifact.

Timestamps are 64-bit cycles (``array('q')``) and the derived
``latency_us`` column stores the *exact* ``array('d')`` floats the
live run produced via ``Clock.cycles_to_us`` — reading them back and
feeding :func:`repro.metrics.stats.summarize` is bit-identical to
summarizing the in-memory columns, which the store tests pin.

An optional Arrow/parquet writer sits behind a soft import
(:meth:`RunArtifact.to_parquet`); the binary format itself has zero
dependencies.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import tempfile
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.core.policy import HandlingMode
from repro.hypervisor.hypervisor import LatencyRecord
from repro.sim.trace import TraceEvent, TraceKind, TraceRecorder

#: First eight bytes of every artifact.
MAGIC = b"RPRSTOR1"

#: Bumped on any change to the binary layout or column schemas.
FORMAT_VERSION = 1

#: File extension campaign artifacts are written (and scanned) with.
ARTIFACT_SUFFIX = ".rpart"

#: Latency row schema: (column name, array typecode), in chunk order.
#: ``leg``/``source``/``mode`` are interned-string ids.
LATENCY_SCHEMA = (
    ("leg", "i"),
    ("source", "i"),
    ("seq", "q"),
    ("arrival", "q"),
    ("completed", "q"),
    ("mode", "i"),
    ("cut", "b"),
    ("latency_us", "d"),
)

#: Trace row schema; ``kind``/``data`` are interned-string ids (the
#: data cell is the event's canonical-JSON payload).
TRACE_SCHEMA = (
    ("time", "q"),
    ("kind", "i"),
    ("data", "i"),
)

_CHUNK_LATENCY = 0
_CHUNK_TRACE = 1

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class ArtifactError(ValueError):
    """A malformed, truncated or corrupt run artifact."""


def _json_safe(value: Any) -> Any:
    """Coerce a trace-event data value into something JSON can carry.

    Mirrors the Perfetto exporter's coercion exactly, so a trace event
    round-tripped through an artifact renders to the identical Chrome
    trace JSON as the live recorder would.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


class _Interner:
    """Append-only string table: string -> small stable id."""

    __slots__ = ("strings", "_index")

    def __init__(self, strings: Optional[Sequence[str]] = None):
        self.strings: "list[str]" = list(strings or ())
        self._index = {s: i for i, s in enumerate(self.strings)}

    def intern(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self.strings)
            self._index[value] = index
            self.strings.append(value)
        return index


def trace_events_to_columns(events: Iterable[TraceEvent],
                            interner: Optional[_Interner] = None,
                            ) -> "tuple[dict[str, array], _Interner]":
    """Pack trace events into the columnar form (time/kind/data ids)."""
    interner = interner or _Interner()
    times = array("q")
    kinds = array("i")
    blobs = array("i")
    for event in events:
        times.append(event.time)
        kinds.append(interner.intern(event.kind.value))
        payload = json.dumps(
            {str(k): _json_safe(v) for k, v in event.data.items()},
            separators=(",", ":"),
        )
        blobs.append(interner.intern(payload))
    return {"time": times, "kind": kinds, "data": blobs}, interner


def trace_events_from_columns(columns: "Mapping[str, array]",
                              strings: Sequence[str],
                              ) -> "list[TraceEvent]":
    """Rebuild :class:`TraceEvent` objects from stored trace columns."""
    return [
        TraceEvent(time, TraceKind(strings[kind]),
                   json.loads(strings[blob]))
        for time, kind, blob in zip(columns["time"], columns["kind"],
                                    columns["data"])
    ]


class ArtifactWriter:
    """Streaming writer for one run artifact.

    Opens a temp file next to ``path`` immediately; ``append_summary``
    and ``append_trace`` each flush one chunk; :meth:`close` writes the
    footer + checksum and atomically renames the file into place.
    Usable as a context manager (aborting on exceptions).
    """

    def __init__(self, path: "str | os.PathLike[str]",
                 metadata: "Mapping[str, Any] | None" = None):
        self.path = Path(path)
        self.metadata = dict(metadata or {})
        self._interner = _Interner()
        self._latency_rows = 0
        self._trace_rows = 0
        self._bytes = 0
        self._sha = hashlib.sha256()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, self._tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp")
        self._handle = os.fdopen(fd, "wb")
        header = {
            "format": "repro-run-artifact",
            "version": FORMAT_VERSION,
            "byteorder": sys.byteorder,
            "latency_columns": [list(column) for column in LATENCY_SCHEMA],
            "trace_columns": [list(column) for column in TRACE_SCHEMA],
            "metadata": self.metadata,
        }
        blob = json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        self._write(MAGIC)
        self._write(_U32.pack(FORMAT_VERSION))
        self._write(_U32.pack(len(blob)))
        self._write(blob)

    # ------------------------------------------------------------ io

    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._sha.update(data)
        self._bytes += len(data)

    def _write_chunk(self, kind: int, rows: int,
                     columns: "Sequence[array]") -> None:
        self._write(b"CHNK")
        self._write(bytes([kind]))
        self._write(_U64.pack(rows))
        for column in columns:
            raw = column.tobytes()
            self._write(_U64.pack(len(raw)))
            self._write(raw)

    # ------------------------------------------------------- append

    def append_summary(self, leg: str, records: Sequence[LatencyRecord],
                       latencies_us: Sequence[float]) -> int:
        """Append one scenario summary's rows under the ``leg`` label.

        ``latencies_us`` must align 1:1 with ``records`` (both are in
        completion order); the µs floats are stored verbatim so the
        round trip is bit-exact.
        """
        records = list(records)
        if len(records) != len(latencies_us):
            raise ArtifactError(
                f"{self.path.name}: leg {leg!r} has {len(records)} records "
                f"but {len(latencies_us)} latency values"
            )
        leg_id = self._interner.intern(leg)
        columns = {name: array(code) for name, code in LATENCY_SCHEMA}
        intern = self._interner.intern
        for record, latency_us in zip(records, latencies_us):
            columns["leg"].append(leg_id)
            columns["source"].append(intern(record.source))
            columns["seq"].append(record.seq)
            columns["arrival"].append(record.arrival)
            columns["completed"].append(record.completed_at)
            columns["mode"].append(intern(record.mode.value))
            columns["cut"].append(1 if record.enforced_cut else 0)
            columns["latency_us"].append(latency_us)
        self._write_chunk(_CHUNK_LATENCY, len(records),
                          [columns[name] for name, _ in LATENCY_SCHEMA])
        self._latency_rows += len(records)
        return len(records)

    def append_trace(self, events: Iterable[TraceEvent]) -> int:
        """Append trace events as columnar rows (time/kind/data)."""
        columns, _ = trace_events_to_columns(events, self._interner)
        rows = len(columns["time"])
        self._write_chunk(_CHUNK_TRACE, rows,
                          [columns[name] for name, _ in TRACE_SCHEMA])
        self._trace_rows += rows
        return rows

    # -------------------------------------------------------- close

    def close(self) -> int:
        """Finalize footer + checksum; atomically rename; return bytes."""
        footer = {
            "strings": self._interner.strings,
            "latency_rows": self._latency_rows,
            "trace_rows": self._trace_rows,
        }
        blob = json.dumps(footer, separators=(",", ":")).encode("utf-8")
        self._write(b"FOOT")
        self._write(_U32.pack(len(blob)))
        self._write(blob)
        digest = self._sha.digest()
        self._handle.write(b"SUM0")
        self._handle.write(digest)
        self._bytes += 4 + len(digest)
        self._handle.close()
        os.replace(self._tmp_name, self.path)
        return self._bytes

    def abort(self) -> None:
        """Discard the temp file without producing an artifact."""
        try:
            self._handle.close()
        finally:
            try:
                os.unlink(self._tmp_name)
            except OSError:
                pass

    def __enter__(self) -> "ArtifactWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


@dataclass
class RunArtifact:
    """One fully-parsed run artifact (columns + string table)."""

    path: Path
    metadata: "dict[str, Any]"
    strings: "list[str]"
    latency: "dict[str, array]" = field(default_factory=dict)
    trace: "dict[str, array]" = field(default_factory=dict)

    # ------------------------------------------------------- loading

    @staticmethod
    def read_metadata(path: "str | os.PathLike[str]") -> "dict[str, Any]":
        """Read only the header's ``metadata`` dict (cheap scan path)."""
        with open(path, "rb") as handle:
            header = _read_header(handle, path)
        return header.get("metadata", {})

    @classmethod
    def read(cls, path: "str | os.PathLike[str]") -> "RunArtifact":
        """Parse (and checksum-verify) a whole artifact."""
        blob = Path(path).read_bytes()
        if len(blob) < len(MAGIC) + 8 or not blob.startswith(MAGIC):
            raise ArtifactError(f"{path}: not a run artifact (bad magic)")
        if len(blob) < 36 or blob[-36:-32] != b"SUM0":
            raise ArtifactError(f"{path}: missing checksum trailer")
        if hashlib.sha256(blob[:-36]).digest() != blob[-32:]:
            raise ArtifactError(f"{path}: checksum mismatch (corrupt file)")
        offset = len(MAGIC)
        version = _U32.unpack_from(blob, offset)[0]
        offset += 4
        if version != FORMAT_VERSION:
            raise ArtifactError(
                f"{path}: unsupported artifact version {version} "
                f"(supported: {FORMAT_VERSION})"
            )
        header_len = _U32.unpack_from(blob, offset)[0]
        offset += 4
        header = json.loads(blob[offset:offset + header_len].decode("utf-8"))
        offset += header_len
        swap = header.get("byteorder", "little") != sys.byteorder
        latency_schema = [tuple(col) for col in header["latency_columns"]]
        trace_schema = [tuple(col) for col in header["trace_columns"]]
        latency = {name: array(code) for name, code in latency_schema}
        trace = {name: array(code) for name, code in trace_schema}
        footer: "dict[str, Any] | None" = None
        end = len(blob) - 36
        while offset < end:
            marker = blob[offset:offset + 4]
            offset += 4
            if marker == b"FOOT":
                footer_len = _U32.unpack_from(blob, offset)[0]
                offset += 4
                footer = json.loads(
                    blob[offset:offset + footer_len].decode("utf-8"))
                offset += footer_len
                break
            if marker != b"CHNK":
                raise ArtifactError(
                    f"{path}: unknown section marker {marker!r} at byte "
                    f"{offset - 4}"
                )
            kind = blob[offset]
            offset += 1
            rows = _U64.unpack_from(blob, offset)[0]
            offset += 8
            schema = (latency_schema if kind == _CHUNK_LATENCY
                      else trace_schema)
            target = latency if kind == _CHUNK_LATENCY else trace
            for name, code in schema:
                nbytes = _U64.unpack_from(blob, offset)[0]
                offset += 8
                column = array(code)
                column.frombytes(blob[offset:offset + nbytes])
                offset += nbytes
                if swap:
                    column.byteswap()
                if len(column) != rows:
                    raise ArtifactError(
                        f"{path}: column {name!r} has {len(column)} values "
                        f"in a {rows}-row chunk"
                    )
                target[name].extend(column)
        if footer is None:
            raise ArtifactError(f"{path}: missing footer")
        artifact = cls(path=Path(path), metadata=header.get("metadata", {}),
                       strings=list(footer.get("strings", [])),
                       latency=latency, trace=trace)
        if artifact.latency_rows != footer.get("latency_rows"):
            raise ArtifactError(
                f"{path}: footer claims {footer.get('latency_rows')} latency "
                f"rows, chunks hold {artifact.latency_rows}"
            )
        if artifact.trace_rows != footer.get("trace_rows"):
            raise ArtifactError(
                f"{path}: footer claims {footer.get('trace_rows')} trace "
                f"rows, chunks hold {artifact.trace_rows}"
            )
        return artifact

    # ------------------------------------------------------- queries

    @property
    def latency_rows(self) -> int:
        return len(self.latency.get("seq", ()))

    @property
    def trace_rows(self) -> int:
        return len(self.trace.get("time", ()))

    def legs(self) -> "list[str]":
        """Distinct leg labels, in first-appearance order."""
        seen: "list[str]" = []
        for leg_id in self.latency["leg"]:
            name = self.strings[leg_id]
            if name not in seen:
                seen.append(name)
        return seen

    def sources(self) -> "list[str]":
        """Distinct IRQ source names, in first-appearance order."""
        seen: "list[str]" = []
        for source_id in self.latency["source"]:
            name = self.strings[source_id]
            if name not in seen:
                seen.append(name)
        return seen

    def _row_mask(self, leg: Optional[str], source: Optional[str],
                  mode: Optional[str]) -> "Optional[list[bool]]":
        wanted: "list[tuple[str, int]]" = []
        for column, value in (("leg", leg), ("source", source),
                              ("mode", mode)):
            if value is None:
                continue
            try:
                wanted.append((column, self.strings.index(value)))
            except ValueError:
                return [False] * self.latency_rows
        if not wanted:
            return None
        mask = [True] * self.latency_rows
        for column, target in wanted:
            for index, cell in enumerate(self.latency[column]):
                if cell != target:
                    mask[index] = False
        return mask

    def latencies_us(self, leg: Optional[str] = None,
                     source: Optional[str] = None,
                     mode: Optional[str] = None) -> array:
        """The stored µs latency column, optionally row-filtered.

        Returned as ``array('d')`` in completion order — element for
        element the floats the live run produced, so feeding it to
        :func:`repro.metrics.stats.summarize` is bit-identical to
        summarizing the in-memory columns.
        """
        values = self.latency["latency_us"]
        mask = self._row_mask(leg, source, mode)
        if mask is None:
            return array("d", values)
        return array("d", (value for value, keep in zip(values, mask)
                           if keep))

    def latency_records(self, leg: Optional[str] = None,
                        ) -> "list[LatencyRecord]":
        """Materialize stored rows as classic :class:`LatencyRecord`."""
        strings = self.strings
        mask = self._row_mask(leg, None, None)
        columns = self.latency
        records = []
        for index in range(self.latency_rows):
            if mask is not None and not mask[index]:
                continue
            records.append(LatencyRecord(
                source=strings[columns["source"][index]],
                seq=columns["seq"][index],
                arrival=columns["arrival"][index],
                completed_at=columns["completed"][index],
                mode=HandlingMode(strings[columns["mode"][index]]),
                enforced_cut=bool(columns["cut"][index]),
            ))
        return records

    def trace_events(self) -> "list[TraceEvent]":
        """Rebuild the stored trace stream as :class:`TraceEvent`."""
        return trace_events_from_columns(self.trace, self.strings)

    def trace_recorder(self) -> TraceRecorder:
        """An enabled recorder holding the stored trace stream."""
        return TraceRecorder.from_events(self.trace_events())

    # ------------------------------------------------------- export

    def to_parquet(self, path: "str | os.PathLike[str]") -> int:
        """Write the latency rows as a parquet file (soft dependency).

        Requires ``pyarrow``; raises a clear ``RuntimeError`` naming
        the missing dependency when it is not installed — the binary
        format itself never needs it.
        """
        try:
            import pyarrow  # type: ignore[import-not-found]
            import pyarrow.parquet  # type: ignore[import-not-found]
        except ImportError as error:
            raise RuntimeError(
                "RunArtifact.to_parquet requires the optional 'pyarrow' "
                "dependency, which is not installed"
            ) from error
        strings = self.strings
        columns = self.latency
        table = pyarrow.table({
            "leg": [strings[i] for i in columns["leg"]],
            "source": [strings[i] for i in columns["source"]],
            "seq": list(columns["seq"]),
            "arrival": list(columns["arrival"]),
            "completed": list(columns["completed"]),
            "mode": [strings[i] for i in columns["mode"]],
            "enforced_cut": [bool(v) for v in columns["cut"]],
            "latency_us": list(columns["latency_us"]),
        })
        pyarrow.parquet.write_table(table, os.fspath(path))
        return self.latency_rows


def _read_header(handle, path) -> "dict[str, Any]":
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise ArtifactError(f"{path}: not a run artifact (bad magic)")
    version = _U32.unpack(handle.read(4))[0]
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"{path}: unsupported artifact version {version} "
            f"(supported: {FORMAT_VERSION})"
        )
    header_len = _U32.unpack(handle.read(4))[0]
    blob = handle.read(header_len)
    if len(blob) != header_len:
        raise ArtifactError(f"{path}: truncated header")
    return json.loads(blob.decode("utf-8"))
