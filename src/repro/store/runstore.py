"""Query layer over a directory of run artifacts.

A :class:`RunStore` scans a store directory (the campaign index when
present, otherwise every ``*.rpart`` header) and answers the three
fleet-scale questions the ROADMAP names without re-running anything:

* **filter** — select artifacts by experiment / kind / scenario /
  seed / load (metadata predicates, header-only reads);
* **aggregate** — merge the stored µs latency columns of the matching
  artifacts (optionally row-filtered by leg / source / handling mode)
  and summarize them through the exact
  :func:`repro.metrics.stats.summarize` single-sort fast path the live
  experiments use, plus arbitrary extra percentiles (p99.9, ...) off
  the same single sorted copy — so a store aggregate over one
  campaign's artifacts is *bit-identical* to summarizing the live
  ``LatencyColumns``, which the tests pin;
* **diff** — join two stores on (experiment, scenario, load) groups
  and report per-group latency deltas (mean/p50/p99/max), the
  machinery ``compare_bench --store-diff`` and the CI query smoke leg
  drive.

Artifacts merge in campaign task order (index order), matching how
the experiment merge functions concatenate per-task samples, so
aggregates are independent of directory listing order.
"""

from __future__ import annotations

import json
import os
import time
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.metrics.stats import LatencySummary, percentile, summarize
from repro.store.artifact import ARTIFACT_SUFFIX, RunArtifact
from repro.store.capture import INDEX_NAME


@dataclass
class StoreQueryStats:
    """Read-side counters, fed to the ``store_*`` telemetry collector."""

    artifacts_scanned: int = 0
    artifacts_read: int = 0
    rows_scanned: int = 0
    bytes_read: int = 0
    queries: int = 0
    query_seconds: float = 0.0

    def as_dict(self) -> "dict[str, Any]":
        return {
            "artifacts_scanned": self.artifacts_scanned,
            "artifacts_read": self.artifacts_read,
            "rows_scanned": self.rows_scanned,
            "bytes_read": self.bytes_read,
            "queries": self.queries,
            "query_seconds": round(self.query_seconds, 4),
        }


@dataclass(frozen=True)
class ArtifactRef:
    """One scanned artifact: path + metadata, loaded lazily on demand."""

    path: Path
    metadata: "Mapping[str, Any]"
    order: int                    #: campaign task order (merge order)

    def matches(self, filters: "Mapping[str, Any]") -> bool:
        for key, wanted in filters.items():
            if wanted is None:
                continue
            value = self.metadata.get(key)
            if isinstance(wanted, (list, tuple, set, frozenset)):
                if value not in wanted:
                    return False
            elif isinstance(wanted, float) and isinstance(value, (int, float)):
                if abs(float(value) - wanted) > 1e-12:
                    return False
            elif value != wanted:
                return False
        return True


@dataclass(frozen=True)
class AggregateResult:
    """One aggregate answer: the standard summary + extra percentiles."""

    count: int
    summary: "LatencySummary | None"
    percentiles: "dict[str, float]"
    artifacts: int

    def as_dict(self) -> "dict[str, Any]":
        payload: "dict[str, Any]" = {
            "count": self.count,
            "artifacts": self.artifacts,
            "percentiles": dict(self.percentiles),
        }
        if self.summary is not None:
            payload["summary"] = {
                "count": self.summary.count,
                "mean": self.summary.mean,
                "minimum": self.summary.minimum,
                "maximum": self.summary.maximum,
                "p50": self.summary.p50,
                "p95": self.summary.p95,
                "p99": self.summary.p99,
                "stddev": self.summary.stddev,
            }
        return payload


@dataclass(frozen=True)
class GroupDelta:
    """Per-group latency delta between two stores (B minus A)."""

    group: "tuple[Any, ...]"
    count_a: int
    count_b: int
    mean_a: float
    mean_b: float
    p50_delta: float
    p99_delta: float
    max_delta: float

    @property
    def mean_delta(self) -> float:
        return self.mean_b - self.mean_a

    def as_dict(self) -> "dict[str, Any]":
        experiment, scenario, load = self.group
        return {
            "experiment": experiment,
            "scenario": scenario,
            "load": load,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "mean_delta": self.mean_delta,
            "p50_delta": self.p50_delta,
            "p99_delta": self.p99_delta,
            "max_delta": self.max_delta,
        }


@dataclass
class DiffResult:
    """A two-store diff: joined group deltas + unmatched groups."""

    groups: "list[GroupDelta]" = field(default_factory=list)
    only_in_a: "list[tuple[Any, ...]]" = field(default_factory=list)
    only_in_b: "list[tuple[Any, ...]]" = field(default_factory=list)

    def as_dict(self) -> "dict[str, Any]":
        return {
            "groups": [delta.as_dict() for delta in self.groups],
            "only_in_a": [list(group) for group in self.only_in_a],
            "only_in_b": [list(group) for group in self.only_in_b],
        }


class RunStore:
    """A directory of run artifacts, scanned once, queried many times.

    The scan prefers the campaign ``index.json`` (one read, preserves
    task order); directories without one — partial copies, hand-rolled
    artifact piles — fall back to header-only reads of every
    ``*.rpart`` file in sorted-name order.
    """

    def __init__(self, directory: "str | os.PathLike[str]",
                 stats: "StoreQueryStats | None" = None):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(
                f"run store directory not found: {self.directory}"
            )
        self.stats = stats if stats is not None else StoreQueryStats()
        self._cache: "dict[Path, RunArtifact]" = {}
        self.refs = self._scan()

    # ---------------------------------------------------------- scan

    def _scan(self) -> "list[ArtifactRef]":
        started = time.perf_counter()
        refs: "list[ArtifactRef]" = []
        index_path = self.directory / INDEX_NAME
        if index_path.is_file():
            index = json.loads(index_path.read_text())
            for order, entry in enumerate(index.get("tasks", [])):
                name = entry.get("artifact")
                if not name:
                    continue
                path = self.directory / name
                if not path.is_file():
                    continue
                metadata = entry.get("metadata")
                if metadata is None:
                    metadata = RunArtifact.read_metadata(path)
                refs.append(ArtifactRef(path, metadata, order))
        else:
            names = sorted(self.directory.glob("*" + ARTIFACT_SUFFIX))
            for order, path in enumerate(names):
                refs.append(ArtifactRef(
                    path, RunArtifact.read_metadata(path), order))
        self.stats.artifacts_scanned += len(refs)
        self.stats.query_seconds += time.perf_counter() - started
        return refs

    def _load(self, ref: ArtifactRef) -> RunArtifact:
        artifact = self._cache.get(ref.path)
        if artifact is None:
            artifact = RunArtifact.read(ref.path)
            self._cache[ref.path] = artifact
            self.stats.artifacts_read += 1
            self.stats.rows_scanned += artifact.latency_rows
            self.stats.bytes_read += ref.path.stat().st_size
        return artifact

    # --------------------------------------------------------- filter

    def select(self, experiment: "str | Sequence[str] | None" = None,
               kind: Optional[str] = None,
               scenario: Optional[str] = None,
               seed: Optional[int] = None,
               load: Optional[float] = None,
               ) -> "list[ArtifactRef]":
        """Artifacts whose metadata matches every given predicate."""
        filters = {
            "experiment": (tuple(experiment)
                           if isinstance(experiment, (list, tuple, set))
                           else experiment),
            "kind": kind,
            "scenario": scenario,
            "task_seed": seed,
            "load": load,
        }
        return [ref for ref in self.refs if ref.matches(filters)]

    # ------------------------------------------------------ aggregate

    def latencies(self, refs: "Iterable[ArtifactRef] | None" = None,
                  leg: Optional[str] = None, source: Optional[str] = None,
                  mode: Optional[str] = None, **meta_filters: Any) -> array:
        """Merged µs latency column across matching artifacts.

        Artifacts merge in campaign task order; rows stay in each
        artifact's completion order — the concatenation the experiment
        merge functions themselves produce.
        """
        if refs is None:
            refs = self.select(**meta_filters)
        merged = array("d")
        for ref in sorted(refs, key=lambda r: r.order):
            artifact = self._load(ref)
            merged.extend(artifact.latencies_us(leg=leg, source=source,
                                                mode=mode))
        return merged

    def aggregate(self, percentiles: "Sequence[float]" = (),
                  leg: Optional[str] = None, source: Optional[str] = None,
                  mode: Optional[str] = None,
                  **meta_filters: Any) -> AggregateResult:
        """Summary + extra percentiles over the matching latency rows.

        ``percentiles`` are given as percent values (99.9 means the
        p99.9); the standard eight-number summary always comes from
        :func:`repro.metrics.stats.summarize` so its values are
        bit-identical to a live-run summary of the same sample.
        """
        started = time.perf_counter()
        self.stats.queries += 1
        refs = self.select(**meta_filters)
        merged = self.latencies(refs, leg=leg, source=source, mode=mode)
        if not merged:
            result = AggregateResult(0, None, {}, len(refs))
        else:
            summary = summarize(merged)
            extra: "dict[str, float]" = {}
            if percentiles:
                ordered = sorted(merged)
                for percent in percentiles:
                    extra[f"p{percent:g}"] = percentile(
                        ordered, percent / 100.0)
            result = AggregateResult(len(merged), summary, extra, len(refs))
        self.stats.query_seconds += time.perf_counter() - started
        return result

    # ----------------------------------------------------------- diff

    def _group_key(self, ref: ArtifactRef) -> "tuple[Any, ...]":
        return (ref.metadata.get("experiment"),
                ref.metadata.get("scenario"),
                ref.metadata.get("load"))

    def _grouped(self, **meta_filters: Any,
                 ) -> "dict[tuple[Any, ...], array]":
        groups: "dict[tuple[Any, ...], array]" = {}
        for ref in sorted(self.select(**meta_filters),
                          key=lambda r: r.order):
            key = self._group_key(ref)
            merged = groups.setdefault(key, array("d"))
            merged.extend(self._load(ref).latencies_us())
        return groups

    def diff(self, other: "RunStore", **meta_filters: Any) -> DiffResult:
        """Per-(experiment, scenario, load) latency deltas vs ``other``.

        Deltas are other-minus-self: positive numbers mean the second
        campaign (B) is slower.  Groups present in only one store are
        listed separately instead of silently dropped.
        """
        started = time.perf_counter()
        self.stats.queries += 1
        groups_a = self._grouped(**meta_filters)
        groups_b = other._grouped(**meta_filters)
        result = DiffResult()
        for key in sorted(groups_a, key=repr):
            if key not in groups_b:
                result.only_in_a.append(key)
                continue
            sample_a = groups_a[key]
            sample_b = groups_b[key]
            if not sample_a or not sample_b:
                continue
            summary_a = summarize(sample_a)
            summary_b = summarize(sample_b)
            result.groups.append(GroupDelta(
                group=key,
                count_a=summary_a.count, count_b=summary_b.count,
                mean_a=summary_a.mean, mean_b=summary_b.mean,
                p50_delta=summary_b.p50 - summary_a.p50,
                p99_delta=summary_b.p99 - summary_a.p99,
                max_delta=summary_b.maximum - summary_a.maximum,
            ))
        for key in sorted(groups_b, key=repr):
            if key not in groups_a:
                result.only_in_b.append(key)
        self.stats.query_seconds += time.perf_counter() - started
        return result

    # ------------------------------------------------------- summary

    def describe(self) -> "list[dict[str, Any]]":
        """One row per artifact: the listing the CLI ``list`` prints."""
        rows = []
        for ref in self.refs:
            rows.append({
                "artifact": ref.path.name,
                "experiment": ref.metadata.get("experiment"),
                "kind": ref.metadata.get("kind"),
                "scenario": ref.metadata.get("scenario"),
                "load": ref.metadata.get("load"),
                "seed": ref.metadata.get("task_seed"),
                "queue_backend": ref.metadata.get("queue_backend"),
                "idle_skip": ref.metadata.get("idle_skip"),
            })
        return rows
