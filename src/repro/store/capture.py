"""Campaign-side capture: one run artifact per task, plus an index.

The campaign runner stays store-agnostic — it duck-calls
``store.write_task(task, result, index)`` on whatever object the CLI
hands it, so this module may import experiment modules freely without
creating an import cycle.

Capture walks each task result recursively (dataclasses, dicts,
lists/tuples) for ``ScenarioSummary``-shaped legs — anything carrying
``records`` + ``latencies_us`` + ``summary`` — and persists every leg's
latency rows into one :class:`~repro.store.artifact.ArtifactWriter`
per task, labelled by its path in the result ("monitored", "boosted",
"scenario", ...).  Tasks whose results hold no latency rows (snapshot
prefixes, context-switch comparisons, the design point) are skipped
but still listed in the campaign index so a query layer can tell
"no data" from "not captured".

Artifact metadata carries the same fingerprint fields the result
cache keys on — experiment, task kind, kwargs-derived scenario/load/
seed, campaign scale, queue backend, idle-skip flag, and the
transitive source digest of the task's implementing module — so
stored runs are joinable with cache entries and exported CSV
manifests.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Optional

from repro.store.artifact import ARTIFACT_SUFFIX, ArtifactWriter

#: Campaign index format identifier (the sibling of the artifacts).
INDEX_FORMAT = "repro-store-index-v1"

#: Name of the campaign-level index file inside a store directory.
INDEX_NAME = "index.json"


def _is_summary(value: Any) -> bool:
    return (hasattr(value, "records") and hasattr(value, "latencies_us")
            and hasattr(value, "summary"))


def extract_summaries(result: Any, prefix: str = "",
                      ) -> "list[tuple[str, Any]]":
    """Find every ScenarioSummary-shaped leg inside a task result.

    Returns ``(leg_label, summary)`` pairs in a deterministic
    depth-first order; the label is the dotted field/key/index path
    from the result root ("" for a bare summary).
    """
    found: "list[tuple[str, Any]]" = []
    _walk(result, prefix, found)
    return found


def _walk(value: Any, path: str, found: "list[tuple[str, Any]]") -> None:
    if _is_summary(value):
        found.append((path, value))
        return
    if is_dataclass(value) and not isinstance(value, type):
        for spec in fields(value):
            child = getattr(value, spec.name)
            _walk(child, f"{path}.{spec.name}" if path else spec.name, found)
        return
    if isinstance(value, dict):
        for key, child in value.items():
            _walk(child, f"{path}.{key}" if path else str(key), found)
        return
    if isinstance(value, (list, tuple)):
        for index, child in enumerate(value):
            _walk(child, f"{path}.{index}" if path else str(index), found)


#: Memoized per-kind source digests: the transitive fingerprint walk
#: re-parses nothing after the first call, but still re-traverses the
#: import graph — a per-task cost worth skipping in the capture path.
_SOURCE_DIGESTS: "dict[str, Optional[str]]" = {}


def _task_source_digest(kind: str) -> Optional[str]:
    """Transitive source digest of the module implementing ``kind``.

    Deferred import: the runner imports nothing from ``repro.store``,
    and this module reaches back into the runner only at call time.
    """
    if kind in _SOURCE_DIGESTS:
        return _SOURCE_DIGESTS[kind]
    from repro.experiments.cache import source_fingerprint
    from repro.experiments.runner import TASK_FUNCTIONS

    function = TASK_FUNCTIONS.get(kind)
    digest = (None if function is None
              else source_fingerprint(function.__module__))
    _SOURCE_DIGESTS[kind] = digest
    return digest


def task_metadata(task: Any, index: int,
                  campaign_meta: "dict[str, Any]") -> "dict[str, Any]":
    """Self-describing metadata header for one task's artifact."""
    kwargs = dict(task.kwargs)
    meta: "dict[str, Any]" = dict(campaign_meta)
    meta.update({
        "experiment": task.experiment,
        "kind": task.kind,
        "task_index": index,
    })
    # Scenario / case label, wherever the task kind spells it.
    for key in ("scenario", "label"):
        if isinstance(kwargs.get(key), str):
            meta["scenario"] = kwargs[key]
            break
    else:
        meta.setdefault("scenario", task.experiment)
    # Interrupt load, for the per-load fig6/tab62 cells.
    load_index = kwargs.get("load_index")
    if isinstance(load_index, int):
        loads = kwargs.get("loads")
        if loads is None and hasattr(kwargs.get("config"), "loads"):
            loads = kwargs["config"].loads
        if loads is not None and 0 <= load_index < len(loads):
            meta["load"] = loads[load_index]
        meta["load_index"] = load_index
    # Per-task seed, preferring the explicit kwarg over config.seed,
    # with the fig6 per-load derivation applied (seed + load_index).
    seed = kwargs.get("seed")
    if seed is None and hasattr(kwargs.get("config"), "seed"):
        seed = kwargs["config"].seed
    if isinstance(seed, int):
        if task.kind == "fig6-load" and isinstance(load_index, int):
            seed += load_index
        meta["task_seed"] = seed
    digest = _task_source_digest(task.kind)
    if digest is not None:
        meta["source_digest"] = digest
    return meta


def campaign_metadata(scale_name: str, seed: int,
                      jobs: "int | None" = None) -> "dict[str, Any]":
    """Campaign-wide metadata fields shared by every artifact."""
    from repro.sim.engine import resolve_idle_skip
    from repro.sim.queue import resolve_backend_name

    meta: "dict[str, Any]" = {
        "scale": scale_name,
        "campaign_seed": seed,
        "queue_backend": resolve_backend_name(None),
        "idle_skip": resolve_idle_skip(None),
    }
    if jobs is not None:
        meta["jobs"] = jobs
    return meta


@dataclass
class StoreWriteStats:
    """Write-side counters, fed to telemetry and the ``store_ab`` bench."""

    artifacts_written: int = 0
    rows_written: int = 0
    trace_rows_written: int = 0
    bytes_written: int = 0
    write_seconds: float = 0.0
    skipped_tasks: int = 0

    def as_dict(self) -> "dict[str, Any]":
        return {
            "artifacts_written": self.artifacts_written,
            "rows_written": self.rows_written,
            "trace_rows_written": self.trace_rows_written,
            "bytes_written": self.bytes_written,
            "write_seconds": round(self.write_seconds, 4),
            "skipped_tasks": self.skipped_tasks,
        }


class CampaignStoreWriter:
    """Writes one artifact per campaign task into a store directory.

    The runner calls :meth:`write_task` after each task resolves (in
    task order, in the parent process — workers never touch the
    store); :meth:`finalize` lands the campaign index atomically.
    Capture is purely additive: results pass through untouched, so CSV
    exports and cached pickles stay byte-identical with or without a
    store attached.
    """

    def __init__(self, directory: "str | os.PathLike[str]",
                 campaign_meta: "dict[str, Any] | None" = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.campaign_meta = dict(campaign_meta or {})
        self.stats = StoreWriteStats()
        self._entries: "list[dict[str, Any]]" = []

    # ------------------------------------------------------- capture

    def write_task(self, task: Any, result: Any, index: int) -> Optional[str]:
        """Persist one task result; returns the artifact filename."""
        started = time.perf_counter()
        legs = extract_summaries(result)
        entry: "dict[str, Any]" = {
            "experiment": task.experiment,
            "kind": task.kind,
            "task_index": index,
        }
        if not legs:
            entry["artifact"] = None
            entry["rows"] = 0
            self._entries.append(entry)
            self.stats.skipped_tasks += 1
            self.stats.write_seconds += time.perf_counter() - started
            return None
        name = f"task-{index:04d}-{task.experiment}-{task.kind}{ARTIFACT_SUFFIX}"
        metadata = task_metadata(task, index, self.campaign_meta)
        rows = 0
        with ArtifactWriter(self.directory / name, metadata) as writer:
            for leg, summary in legs:
                rows += writer.append_summary(leg, summary.records,
                                              summary.latencies_us)
        entry["artifact"] = name
        entry["rows"] = rows
        entry["legs"] = [leg for leg, _ in legs]
        entry["metadata"] = metadata
        self._entries.append(entry)
        self.stats.artifacts_written += 1
        self.stats.rows_written += rows
        self.stats.bytes_written += (self.directory / name).stat().st_size
        self.stats.write_seconds += time.perf_counter() - started
        return name

    def write_traced_run(self, run: Any,
                         name: str = "traced-run" + ARTIFACT_SUFFIX,
                         ) -> Optional[str]:
        """Persist a traced replay (latency + trace columns) if traced.

        ``run`` is a :class:`repro.telemetry.run.TracedRun`; its
        recorder holds the full event stream of the replayed fig6
        cell, which lands as trace columns next to the latency rows.
        """
        started = time.perf_counter()
        metadata = dict(self.campaign_meta)
        metadata.update({
            "experiment": f"fig6{run.scenario}",
            "kind": "traced-replay",
            "scenario": f"fig6{run.scenario}",
            "load": run.load,
            "task_seed": run.seed,
        })
        result = run.result
        rows = 0
        with ArtifactWriter(self.directory / name, metadata) as writer:
            rows += writer.append_summary("scenario", result.records,
                                          result.latencies_us)
            trace_rows = writer.append_trace(run.trace.events)
        self._entries.append({
            "experiment": metadata["experiment"],
            "kind": "traced-replay",
            "task_index": None,
            "artifact": name,
            "rows": rows,
            "trace_rows": trace_rows,
            "legs": ["scenario"],
            "metadata": metadata,
        })
        self.stats.artifacts_written += 1
        self.stats.rows_written += rows
        self.stats.trace_rows_written += trace_rows
        self.stats.bytes_written += (self.directory / name).stat().st_size
        self.stats.write_seconds += time.perf_counter() - started
        return name

    # ------------------------------------------------------ finalize

    def finalize(self) -> StoreWriteStats:
        """Write the campaign index atomically; return write stats."""
        started = time.perf_counter()
        index = {
            "format": INDEX_FORMAT,
            "campaign": self.campaign_meta,
            "tasks": self._entries,
            "stats": self.stats.as_dict(),
        }
        blob = json.dumps(index, indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        prefix=INDEX_NAME, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp_name, self.directory / INDEX_NAME)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.write_seconds += time.perf_counter() - started
        return self.stats


def artifact_from_hypervisor(hv: Any, path: "str | os.PathLike[str]",
                             metadata: "dict[str, Any] | None" = None,
                             include_trace: bool = True) -> int:
    """Persist a live hypervisor's latency columns (and trace) directly.

    The round-trip building block the property tests pin: the stored
    µs column is exactly ``latency_columns.latencies_us_array(clock)``.
    """
    columns = hv.latency_columns
    records = columns.records()
    latencies = columns.latencies_us_array(hv.clock)
    with ArtifactWriter(path, metadata) as writer:
        rows = writer.append_summary("scenario", records, latencies)
        if include_trace and len(hv.trace):
            writer.append_trace(hv.trace.events)
    return rows
