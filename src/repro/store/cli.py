"""The ``python -m repro.experiments query`` subcommand.

Answers store questions from persisted artifacts without re-running
any simulation:

* ``query list STORE`` — one row per artifact (experiment, scenario,
  load, seed, backend, idle-skip);
* ``query aggregate STORE [filters] [--percentiles 50,99,99.9]`` —
  merged percentile summary over the matching latency rows, via the
  same :func:`repro.metrics.stats.summarize` the live runs use;
* ``query diff STORE_A STORE_B [filters]`` — per-(experiment,
  scenario, load) latency deltas between two campaigns.

Every subcommand prints an aligned table by default or a JSON
document with ``--json`` (for CI assertions and downstream tooling).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.metrics.report import render_table
from repro.store.runstore import RunStore, StoreQueryStats


def _parse_percentiles(text: str) -> "list[float]":
    values = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        value = float(piece)
        if not 0.0 <= value <= 100.0:
            raise argparse.ArgumentTypeError(
                f"percentile must be in [0, 100], got {piece!r}"
            )
        values.append(value)
    if not values:
        raise argparse.ArgumentTypeError(
            f"no percentiles given in {text!r}"
        )
    return values


def _add_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--experiment", action="append", default=None,
                        help="filter by experiment id (repeatable)")
    parser.add_argument("--kind", default=None,
                        help="filter by task kind (e.g. fig6-load)")
    parser.add_argument("--scenario", default=None,
                        help="filter by scenario / case label")
    parser.add_argument("--seed", type=int, default=None,
                        help="filter by per-task seed")
    parser.add_argument("--load", type=float, default=None,
                        help="filter by interrupt load bound")


def _filters(args: argparse.Namespace) -> "dict[str, Any]":
    experiment = args.experiment
    if experiment is not None and len(experiment) == 1:
        experiment = experiment[0]
    return {
        "experiment": experiment,
        "kind": args.kind,
        "scenario": args.scenario,
        "seed": args.seed,
        "load": args.load,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments query",
        description="Query persisted campaign run artifacts "
                    "(no simulation runs).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list the artifacts in a store directory")
    list_parser.add_argument("store", help="store directory")
    _add_filters(list_parser)
    list_parser.add_argument("--json", action="store_true",
                             help="print JSON instead of a table")

    agg_parser = commands.add_parser(
        "aggregate",
        help="percentile summary over the matching latency rows")
    agg_parser.add_argument("store", help="store directory")
    _add_filters(agg_parser)
    agg_parser.add_argument("--leg", default=None,
                            help="row filter: result leg "
                                 "(e.g. monitored, boosted, scenario)")
    agg_parser.add_argument("--source", default=None,
                            help="row filter: IRQ source name")
    agg_parser.add_argument("--mode", default=None,
                            choices=("direct", "interposed", "delayed"),
                            help="row filter: handling mode")
    agg_parser.add_argument("--percentiles", type=_parse_percentiles,
                            default=None, metavar="P,P,...",
                            help="extra percentiles, e.g. 50,95,99,99.9")
    agg_parser.add_argument("--json", action="store_true",
                            help="print JSON instead of a table")

    diff_parser = commands.add_parser(
        "diff", help="per-scenario latency deltas between two stores")
    diff_parser.add_argument("store_a", help="baseline store directory")
    diff_parser.add_argument("store_b", help="comparison store directory")
    _add_filters(diff_parser)
    diff_parser.add_argument("--json", action="store_true",
                             help="print JSON instead of a table")

    return parser


def _cmd_list(args: argparse.Namespace, stats: StoreQueryStats) -> int:
    store = RunStore(args.store, stats=stats)
    refs = store.select(**_filters(args))
    selected = {ref.path.name for ref in refs}
    rows = [row for row in store.describe() if row["artifact"] in selected]
    if args.json:
        print(json.dumps({"artifacts": rows}, indent=2))
        return 0
    print(render_table(
        ("artifact", "experiment", "scenario", "load", "seed",
         "backend", "idle-skip"),
        [(row["artifact"], row["experiment"], row["scenario"],
          "-" if row["load"] is None else row["load"],
          "-" if row["seed"] is None else row["seed"],
          row["queue_backend"] or "-",
          "-" if row["idle_skip"] is None
          else ("on" if row["idle_skip"] else "off"))
         for row in rows],
        title=f"{len(rows)} artifacts in {args.store}",
    ))
    return 0


def _cmd_aggregate(args: argparse.Namespace, stats: StoreQueryStats) -> int:
    store = RunStore(args.store, stats=stats)
    result = store.aggregate(
        percentiles=args.percentiles or (),
        leg=args.leg, source=args.source, mode=args.mode,
        **_filters(args),
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0 if result.count else 1
    if not result.count:
        print(f"no latency rows matched in {args.store} "
              f"({result.artifacts} artifacts selected)", file=sys.stderr)
        return 1
    summary = result.summary
    rows = [
        ("samples", summary.count),
        ("artifacts", result.artifacts),
        ("mean (us)", summary.mean),
        ("min (us)", summary.minimum),
        ("p50 (us)", summary.p50),
        ("p95 (us)", summary.p95),
        ("p99 (us)", summary.p99),
        ("max (us)", summary.maximum),
        ("stddev (us)", summary.stddev),
    ]
    rows += [(f"{name} (us)", value)
             for name, value in result.percentiles.items()]
    print(render_table(("metric", "value"), rows,
                       title=f"latency aggregate over {args.store}"))
    return 0


def _cmd_diff(args: argparse.Namespace, stats: StoreQueryStats) -> int:
    store_a = RunStore(args.store_a, stats=stats)
    store_b = RunStore(args.store_b, stats=stats)
    result = store_a.diff(store_b, **_filters(args))
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0 if result.groups else 1
    if not result.groups:
        print(f"no common (experiment, scenario, load) groups between "
              f"{args.store_a} and {args.store_b}", file=sys.stderr)
        return 1
    print(render_table(
        ("experiment", "scenario", "load", "n(A)", "n(B)",
         "mean A (us)", "mean B (us)", "Δmean", "Δp50", "Δp99", "Δmax"),
        [(delta.group[0], delta.group[1],
          "-" if delta.group[2] is None else delta.group[2],
          delta.count_a, delta.count_b, delta.mean_a, delta.mean_b,
          delta.mean_delta, delta.p50_delta, delta.p99_delta,
          delta.max_delta)
         for delta in result.groups],
        title=f"latency deltas: {args.store_b} minus {args.store_a}",
    ))
    for group in result.only_in_a:
        print(f"only in {args.store_a}: {group}", file=sys.stderr)
    for group in result.only_in_b:
        print(f"only in {args.store_b}: {group}", file=sys.stderr)
    return 0


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point for the ``query`` subcommand."""
    args = build_parser().parse_args(argv)
    stats = StoreQueryStats()
    try:
        if args.command == "list":
            return _cmd_list(args, stats)
        if args.command == "aggregate":
            return _cmd_aggregate(args, stats)
        return _cmd_diff(args, stats)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away mid-table (e.g. `query list ... | head`);
        # exit quietly the way other unix table printers do.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
