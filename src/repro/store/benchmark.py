"""Interleaved A/B benchmark of the run-artifact store's write cost.

``measure_store_ab`` runs the same quick campaign task list twice per
repeat — once plain, once writing one artifact per task into a
throwaway store directory — with the leg order alternating between
repeats, a ``gc.collect()`` before each timed leg, and one untimed
warm-up pair first (the same fairness protocol as
``measure_backend_ab``; the warm-up absorbs first-call costs like
source-digest memoization).  Best-of-repeats per leg; the reported
``overhead`` is ``(store - plain) / plain`` of the best times.  The
acceptance bar (store capture costs <5% of campaign wall time at the
quick scale) is recorded as ``store_ab`` in the ``--bench-json``
history, where ``compare_bench.py`` watches it with an absolute cap
(a relative regression check is meaningless for a number expected to
hover near zero).
"""

from __future__ import annotations

import gc
import tempfile
import time
from dataclasses import dataclass

from repro.experiments.scale import QUICK, ExperimentScale
from repro.store.capture import (
    CampaignStoreWriter,
    StoreWriteStats,
    campaign_metadata,
)

#: Campaign the A/B replays (validation: two real simulation tasks).
DEFAULT_EXPERIMENTS = ("validation",)


@dataclass(frozen=True)
class StoreABResult:
    """Outcome of the store-write overhead race."""

    plain_seconds: float        #: best plain campaign leg
    store_seconds: float        #: best campaign-plus-capture leg
    write_stats: StoreWriteStats
    repeats: int

    @property
    def overhead(self) -> float:
        """End-to-end leg delta: ``(store - plain) / plain``.

        The whole-leg A/B measure; on short legs it carries the
        scheduler's noise floor on top of the true capture cost, so
        the cap check uses :attr:`write_ratio` instead.
        """
        if self.plain_seconds <= 0:
            return 0.0
        return (self.store_seconds - self.plain_seconds) / self.plain_seconds

    @property
    def write_ratio(self) -> float:
        """Precise capture cost: instrumented write seconds / plain leg.

        ``write_seconds`` is timed inside ``write_task``/``finalize``
        around exactly the work capture adds (summary extraction,
        column packing, interning, hashing, file writes, the index),
        so this ratio is stable where the end-to-end ``overhead``
        bounces with machine noise — it is the number the <5%
        acceptance cap is enforced on.
        """
        if self.plain_seconds <= 0:
            return 0.0
        return self.write_stats.write_seconds / self.plain_seconds


def _run_leg(tasks, capture: bool,
             campaign_meta) -> "tuple[float, StoreWriteStats | None]":
    """One timed leg: execute the tasks, optionally capturing them."""
    from repro.experiments.runner import _run_tasks

    gc.collect()
    if not capture:
        started = time.perf_counter()
        _run_tasks(tasks, 1)
        return time.perf_counter() - started, None
    with tempfile.TemporaryDirectory(prefix="repro-store-ab-") as tmp:
        started = time.perf_counter()
        writer = CampaignStoreWriter(tmp, campaign_meta)
        results = _run_tasks(tasks, 1)
        for index, (task, result) in enumerate(zip(tasks, results)):
            writer.write_task(task, result, index)
        stats = writer.finalize()
        return time.perf_counter() - started, stats


def measure_store_ab(experiments=DEFAULT_EXPERIMENTS,
                     scale: ExperimentScale = QUICK, seed: int = 1,
                     repeats: int = 5) -> StoreABResult:
    """Race a campaign with artifact capture against the same one without.

    The store leg pays for everything capture adds — summary
    extraction, column packing, interning, hashing, the atomic file
    writes, and the campaign index — inside its timed window.  The
    default scale is ``QUICK``, the scale the <5% acceptance bar is
    defined on (at smaller scales the legs are too short for the
    ratio to be meaningful).
    """
    from repro.experiments.runner import plan_campaign

    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    tasks, _ = plan_campaign(list(experiments), scale, seed)
    campaign_meta = campaign_metadata(scale_name=scale.name, seed=seed)
    # Untimed warm-up pair: first-call costs (imports, per-kind source
    # digests, bytecode warmth) must not land in either timed leg.
    for capture in (False, True):
        _run_leg(tasks, capture, campaign_meta)
    best_plain = float("inf")
    best_store = float("inf")
    write_stats = StoreWriteStats()
    for repeat in range(repeats):
        legs = (False, True) if repeat % 2 == 0 else (True, False)
        for capture in legs:
            elapsed, stats = _run_leg(tasks, capture, campaign_meta)
            if capture:
                if elapsed < best_store:
                    best_store = elapsed
                    write_stats = stats
            else:
                best_plain = min(best_plain, elapsed)
    return StoreABResult(plain_seconds=best_plain, store_seconds=best_store,
                         write_stats=write_stats, repeats=repeats)
